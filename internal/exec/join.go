package exec

import (
	"context"
	"fmt"

	"shark/internal/expr"
	"shark/internal/obs"
	"shark/internal/pde"
	"shark/internal/plan"
	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/shuffle"
)

// compileJoin lowers an equi-join, choosing among (paper §3.1.1, §3.4):
//
//   - co-partitioned map join: both sides are memstore tables
//     DISTRIBUTEd BY the join keys with identical partitioners — no
//     shuffle at all, ZipPartitions + local hash join;
//   - map (broadcast) join: one side observed or estimated small —
//     collect it, broadcast the hash table, map over the other side;
//   - shuffle join: hash-repartition both sides into fine buckets and
//     join bucket-wise, with the local build side chosen per bucket
//     from run-time statistics.
//
// In adaptive modes the decision uses sizes observed by PDE after
// running pre-shuffle map stages.
func (e *Engine) compileJoin(gctx context.Context, j *plan.Join, stats *QueryStats, p *prof) (*rdd.RDD, error) {
	// Co-partitioned fast path.
	if r, ok, err := e.tryCopartitionedJoin(j, stats); err != nil || ok {
		p.of(j).Notef("copartitioned map join")
		return r, err
	}

	left, err := e.compile(gctx, j.Left, stats, p)
	if err != nil {
		return nil, err
	}
	right, err := e.compile(gctx, j.Right, stats, p)
	if err != nil {
		return nil, err
	}
	lKey := e.evalFn(j.LeftKey)
	rKey := e.evalFn(j.RightKey)

	switch {
	case e.opts.JoinStrategy == StrategyStatic || e.opts.DisableAdaptiveExec:
		// With adaptive execution disabled the strategy mode is moot:
		// every join is planned purely from static estimates.
		return e.staticJoin(gctx, j, left, right, lKey, rKey, stats, p.of(j))
	case e.opts.JoinStrategy == StrategyAdaptive:
		return e.adaptiveJoin(gctx, j, left, right, lKey, rKey, stats, p.of(j))
	default:
		return e.staticAdaptiveJoin(gctx, j, left, right, lKey, rKey, stats, p.of(j))
	}
}

// estimateSide statically estimates a child's output bytes: catalog
// sizes discounted per simple filter conjunct. Predicates containing
// function calls (UDFs) get no discount — the static optimizer has no
// selectivity estimate for them, which is exactly the blind spot PDE
// closes (§3.1, §6.3.2).
func estimateSide(n plan.Node) int64 {
	switch t := n.(type) {
	case *plan.Scan:
		est := t.EstBytes()
		for _, f := range t.Filters {
			if !containsCall(f) {
				est = est * 3 / 10
			}
		}
		return est
	case *plan.Filter:
		if containsCall(t.Cond) {
			return estimateSide(t.Child)
		}
		return estimateSide(t.Child) * 3 / 10
	case *plan.Project:
		return estimateSide(t.Child)
	case *plan.Aggregate:
		return estimateSide(t.Child) / 4
	case *plan.Join:
		return estimateSide(t.Left) + estimateSide(t.Right)
	}
	return 1 << 30
}

// containsCall reports whether an expression tree invokes any function
// (built-in or UDF) — treated as unestimatable by the static planner.
func containsCall(e expr.Expr) bool {
	switch t := e.(type) {
	case *expr.Call:
		return true
	case *expr.Arith:
		return containsCall(t.L) || containsCall(t.R)
	case *expr.Cmp:
		return containsCall(t.L) || containsCall(t.R)
	case *expr.And:
		return containsCall(t.L) || containsCall(t.R)
	case *expr.Or:
		return containsCall(t.L) || containsCall(t.R)
	case *expr.Not:
		return containsCall(t.E)
	case *expr.Neg:
		return containsCall(t.E)
	case *expr.In:
		if containsCall(t.E) {
			return true
		}
		for _, item := range t.List {
			if containsCall(item) {
				return true
			}
		}
		return false
	case *expr.Like:
		return containsCall(t.E)
	case *expr.IsNull:
		return containsCall(t.E)
	case *expr.Cast:
		return containsCall(t.E)
	case *expr.Case:
		for _, w := range t.Whens {
			if containsCall(w.Cond) || containsCall(w.Then) {
				return true
			}
		}
		return t.Else != nil && containsCall(t.Else)
	}
	return false
}

// staticJoin decides from estimates only: broadcast if an estimated
// side is under threshold, else full shuffle join.
func (e *Engine) staticJoin(gctx context.Context, j *plan.Join, left, right *rdd.RDD, lKey, rKey expr.EvalFn, stats *QueryStats, ns *NodeStats) (*rdd.RDD, error) {
	lEst, rEst := estimateSide(j.Left), estimateSide(j.Right)
	switch pde.ChooseJoinStrategy(lEst, rEst, e.opts.BroadcastThreshold) {
	case pde.MapJoinLeft:
		stats.JoinStrategies = append(stats.JoinStrategies, "static:map-join(left)")
		ns.Notef("static:map-join(left)")
		return e.broadcastJoin(gctx, left, right, lKey, rKey, true, ns)
	case pde.MapJoinRight:
		stats.JoinStrategies = append(stats.JoinStrategies, "static:map-join(right)")
		ns.Notef("static:map-join(right)")
		return e.broadcastJoin(gctx, right, left, rKey, lKey, false, ns)
	}
	stats.JoinStrategies = append(stats.JoinStrategies, "static:shuffle-join")
	ns.Notef("static:shuffle-join")
	lDep, lStats, err := e.preShuffle(gctx, left, lKey, ns)
	if err != nil {
		return nil, err
	}
	rDep, rStats, err := e.preShuffle(gctx, right, rKey, ns)
	if err != nil {
		return nil, err
	}
	return e.shuffleJoinRead(gctx, lDep, rDep, lStats, rStats, stats, ns), nil
}

// adaptiveJoin pre-shuffles both sides, then decides from observed
// sizes (the paper's "Adaptive" bar in Fig. 8).
func (e *Engine) adaptiveJoin(gctx context.Context, j *plan.Join, left, right *rdd.RDD, lKey, rKey expr.EvalFn, stats *QueryStats, ns *NodeStats) (*rdd.RDD, error) {
	lDep, lStats, err := e.preShuffle(gctx, left, lKey, ns)
	if err != nil {
		return nil, err
	}
	rDep, rStats, err := e.preShuffle(gctx, right, rKey, ns)
	if err != nil {
		return nil, err
	}
	choice := pde.ChooseJoinStrategy(lStats.TotalBytes, rStats.TotalBytes, e.opts.BroadcastThreshold)
	if choice != pde.ShuffleJoin {
		// A conversion is counted only when the static estimates would
		// have kept the shuffle join — i.e. the observed statistics
		// genuinely changed the plan at runtime.
		lEst, rEst := estimateSide(j.Left), estimateSide(j.Right)
		if pde.ChooseJoinStrategy(lEst, rEst, e.opts.BroadcastThreshold) == pde.ShuffleJoin {
			e.noteBroadcastConversion(gctx)
		}
	}
	switch choice {
	case pde.MapJoinLeft:
		stats.JoinStrategies = append(stats.JoinStrategies, "adaptive:map-join(left)")
		ns.Notef("adaptive:map-join(left)")
		return e.broadcastJoinFromShuffle(gctx, lDep, right, rKey, true, ns)
	case pde.MapJoinRight:
		stats.JoinStrategies = append(stats.JoinStrategies, "adaptive:map-join(right)")
		ns.Notef("adaptive:map-join(right)")
		return e.broadcastJoinFromShuffle(gctx, rDep, left, lKey, false, ns)
	}
	stats.JoinStrategies = append(stats.JoinStrategies, "adaptive:shuffle-join")
	ns.Notef("adaptive:shuffle-join")
	return e.shuffleJoinRead(gctx, lDep, rDep, lStats, rStats, stats, ns), nil
}

// staticAdaptiveJoin uses the static prior to pick the likely-small
// side, pre-shuffles only that side, and avoids ever shuffling the big
// side when the observation confirms the prior (Fig. 8's best plan).
func (e *Engine) staticAdaptiveJoin(gctx context.Context, j *plan.Join, left, right *rdd.RDD, lKey, rKey expr.EvalFn, stats *QueryStats, ns *NodeStats) (*rdd.RDD, error) {
	lEst, rEst := estimateSide(j.Left), estimateSide(j.Right)
	probeLeft := lEst <= rEst // side more likely to be small
	var smallSide, bigSide *rdd.RDD
	var smallKey, bigKey expr.EvalFn
	if probeLeft {
		smallSide, bigSide, smallKey, bigKey = left, right, lKey, rKey
	} else {
		smallSide, bigSide, smallKey, bigKey = right, left, rKey, lKey
	}
	smallDep, smallStats, err := e.preShuffle(gctx, smallSide, smallKey, ns)
	if err != nil {
		return nil, err
	}
	if smallStats.TotalBytes <= e.opts.BroadcastThreshold {
		side := "right"
		smallEst := rEst
		if probeLeft {
			side = "left"
			smallEst = lEst
		}
		if smallEst > e.opts.BroadcastThreshold {
			// The estimate said "too big to broadcast" but the observed
			// map output qualified: a runtime plan conversion.
			e.noteBroadcastConversion(gctx)
		}
		stats.JoinStrategies = append(stats.JoinStrategies,
			fmt.Sprintf("static+adaptive:map-join(%s)", side))
		ns.Notef("static+adaptive:map-join(%s)", side)
		return e.broadcastJoinFromShuffle(gctx, smallDep, bigSide, bigKey, probeLeft, ns)
	}
	// Prior was wrong: fall back to a full shuffle join.
	stats.JoinStrategies = append(stats.JoinStrategies, "static+adaptive:shuffle-join")
	ns.Notef("static+adaptive:shuffle-join")
	bigDep, bigStats, err := e.preShuffle(gctx, bigSide, bigKey, ns)
	if err != nil {
		return nil, err
	}
	if probeLeft {
		return e.shuffleJoinRead(gctx, smallDep, bigDep, smallStats, bigStats, stats, ns), nil
	}
	return e.shuffleJoinRead(gctx, bigDep, smallDep, bigStats, smallStats, stats, ns), nil
}

// preShuffle materializes the map side of a shuffle keyed by keyFn and
// returns the dependency plus observed statistics (the PDE primitive).
func (e *Engine) preShuffle(gctx context.Context, r *rdd.RDD, keyFn expr.EvalFn, ns *NodeStats) (*rdd.ShuffleDep, *pde.StageStats, error) {
	pairs := r.Map(func(v any) any {
		rr := v.(row.Row)
		return shuffle.Pair{K: normalizeGroupKey(keyFn(rr)), V: rr}
	})
	dep := e.Ctx.NewShuffleDep(pairs, shuffle.HashPartitioner{N: e.fineBuckets()}, nil)
	endSeg := ns.beginSegment(gctx)
	st, err := e.Ctx.Scheduler().MaterializeShuffleCtx(gctx, dep)
	if err != nil {
		return nil, nil, err
	}
	endSeg()
	return dep, st, nil
}

// shuffleJoinRead joins two materialized shuffles bucket-by-bucket.
// Buckets are coalesced into reduce partitions by bin-packing the
// combined observed sizes; a bucket whose bytes exceed the skew factor
// is instead split across several tasks, each fetching the bucket's
// full build side but only a disjoint subset of the probe side's map
// outputs — the union of the split tasks' outputs is exactly the
// bucket's join result. Within each whole bucket the hash table is
// built over whichever input is locally smaller (run-time choice,
// §3.1.1).
func (e *Engine) shuffleJoinRead(gctx context.Context, lDep, rDep *rdd.ShuffleDep, lStats, rStats *pde.StageStats, stats *QueryStats, ns *NodeStats) *rdd.RDD {
	n := lDep.Partitioner.NumPartitions()
	combined := make([]int64, n)
	for i := 0; i < n; i++ {
		combined[i] = lStats.BucketBytes[i] + rStats.BucketBytes[i]
	}
	var total int64
	for _, b := range combined {
		total += b
	}
	stats.ShuffleBytes += total
	lRecs := append([]int64(nil), lStats.BucketRecords...)
	rRecs := append([]int64(nil), rStats.BucketRecords...)
	// The probe side of bucket b (the side a split slices): the one
	// with more records; the build side is replicated to every slice.
	probeIsLeft := func(b int) bool { return lRecs[b] > rRecs[b] }

	if e.opts.DisableCoalesce || e.opts.DisableAdaptiveExec {
		// Static reduce side: one whole-bucket task per fine bucket.
		tasks := make([][]joinSlice, n)
		for i := range tasks {
			tasks[i] = []joinSlice{{bucket: i}}
		}
		stats.ReducerCounts = append(stats.ReducerCounts, n)
		ns.Notef("reducers=%d (static)", n)
		return joinSource(e.Ctx, lDep, rDep, tasks, lRecs, rRecs)
	}

	// Adaptive reduce side: coalesce cold buckets, split hot ones.
	plan := pde.PlanReduce(combined, func(b int) []int64 {
		probe := rDep
		if probeIsLeft(b) {
			probe = lDep
		}
		return e.Ctx.Tracker().PerMapBucketBytes(probe.ID, b)
	}, pde.SkewConfig{
		TargetBytes: e.opts.TargetPerReducerBytes,
		MinTasks:    e.Ctx.Cluster.TotalSlots(),
		MaxTasks:    n,
		SkewFactor:  e.opts.SkewFactor,
		MaxSplit:    e.Ctx.Cluster.TotalSlots(),
	})
	tasks := make([][]joinSlice, len(plan.Tasks))
	for i, task := range plan.Tasks {
		tasks[i] = make([]joinSlice, len(task))
		for j, s := range task {
			tasks[i][j] = joinSlice{bucket: s.Bucket, probeMaps: s.Maps, probeLeft: probeIsLeft(s.Bucket)}
		}
	}
	e.noteAdaptiveCoalesce(gctx)
	e.noteSkewSplits(gctx, len(plan.SplitBuckets))
	stats.ReducerCounts = append(stats.ReducerCounts, len(tasks))
	ns.Notef("reducers=%d (adaptive, %d skew splits, %d shuffle bytes)",
		len(tasks), len(plan.SplitBuckets), total)
	return joinSource(e.Ctx, lDep, rDep, tasks, lRecs, rRecs)
}

// joinSlice is one reduce task's view of one fine bucket: the whole
// bucket, or — for a skew-split hot bucket — the bucket's full build
// side plus the probe-side contributions of a subset of map partitions.
type joinSlice struct {
	bucket    int
	probeMaps []int // nil = whole bucket
	probeLeft bool  // the sliced probe side is the LEFT dep (when probeMaps != nil)
}

// joinSource builds the reduce-side RDD of a shuffle join. The two
// shuffle dependencies are declared on the RDD even though compute
// fetches their buckets directly: lineage walks must see that a live
// join RDD still needs them (shuffle cleanup, recovery). Each slice
// boundary polls the task's context so a cancelled query aborts the
// join mid-partition.
func joinSource(ctx *rdd.Context, lDep, rDep *rdd.ShuffleDep, tasks [][]joinSlice, lRecs, rRecs []int64) *rdd.RDD {
	deps := []rdd.Dependency{lDep, rDep}
	return ctx.SourceWithDeps("shuffle-join", len(tasks), deps, func(tc *rdd.TaskContext, part int) rdd.Iter {
		var out []any
		for _, s := range tasks[part] {
			tc.FailIfCancelled()
			b := s.bucket
			if s.probeMaps != nil {
				// Skew split: replicate the whole build side, fetch only
				// this task's share of the probe side. joinBucket's
				// swapped flag is true when the build rows came from the
				// RIGHT dep — i.e. when the probe side is the left.
				if s.probeLeft {
					build := fetchBucket(tc, rDep, b)
					probe := fetchBucketMaps(tc, lDep, b, s.probeMaps)
					out = joinBucket(out, build, probe, true)
				} else {
					build := fetchBucket(tc, lDep, b)
					probe := fetchBucketMaps(tc, rDep, b, s.probeMaps)
					out = joinBucket(out, build, probe, false)
				}
				continue
			}
			lPairs := fetchBucket(tc, lDep, b)
			rPairs := fetchBucket(tc, rDep, b)
			// Run-time local algorithm choice: build on the smaller
			// side of this bucket.
			if lRecs[b] <= rRecs[b] {
				out = joinBucket(out, lPairs, rPairs, false)
			} else {
				out = joinBucket(out, rPairs, lPairs, true)
			}
		}
		return rdd.SliceIter(out)
	}, nil)
}

func fetchBucket(tc *rdd.TaskContext, dep *rdd.ShuffleDep, bucket int) []shuffle.Pair {
	locs := tc.Ctx.Tracker().Locations(dep.ID)
	pairs, err := tc.Ctx.Shuffle.Fetch(dep.ID, bucket, locs)
	if err != nil {
		rdd.Fail(err)
	}
	obs.FromContext(tc.Gctx).AddFetch(int64(len(pairs)))
	return pairs
}

// fetchBucketMaps fetches only the listed map partitions' share of a
// bucket — the split-slice read.
func fetchBucketMaps(tc *rdd.TaskContext, dep *rdd.ShuffleDep, bucket int, maps []int) []shuffle.Pair {
	locs := tc.Ctx.Tracker().Locations(dep.ID)
	pairs, err := tc.Ctx.Shuffle.FetchPartial(dep.ID, bucket, locs, maps)
	if err != nil {
		rdd.Fail(err)
	}
	obs.FromContext(tc.Gctx).AddFetch(int64(len(pairs)))
	return pairs
}

// joinBucket hash-joins build×probe. swapped means build came from the
// right side, so output column order must flip back to left++right.
func joinBucket(out []any, build, probe []shuffle.Pair, swapped bool) []any {
	ht := make(map[any][]row.Row, len(build))
	for _, p := range build {
		ht[p.K] = append(ht[p.K], p.V.(row.Row))
	}
	for _, p := range probe {
		if p.K == nil {
			continue
		}
		for _, b := range ht[p.K] {
			pr := p.V.(row.Row)
			if swapped {
				out = append(out, concatRows(pr, b))
			} else {
				out = append(out, concatRows(b, pr))
			}
		}
	}
	return out
}

func concatRows(a, b row.Row) row.Row {
	out := make(row.Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// broadcastJoin collects the small side (an ordinary job), builds a
// hash table, and probes it from map tasks over the big side — no
// shuffle of the big side.
func (e *Engine) broadcastJoin(gctx context.Context, small, big *rdd.RDD, smallKey, bigKey expr.EvalFn, smallIsLeft bool, ns *NodeStats) (*rdd.RDD, error) {
	endSeg := ns.beginSegment(gctx)
	rows, err := small.CollectCtx(gctx)
	if err != nil {
		return nil, err
	}
	endSeg()
	ht := make(map[any][]row.Row, len(rows))
	for _, v := range rows {
		r := v.(row.Row)
		k := normalizeGroupKey(smallKey(r))
		ht[k] = append(ht[k], r)
	}
	return e.probeBroadcast(ht, big, bigKey, smallIsLeft), nil
}

// broadcastJoinFromShuffle is broadcastJoin where the small side was
// already materialized as shuffle map output: its rows are fetched
// from the buckets instead of recomputed.
func (e *Engine) broadcastJoinFromShuffle(gctx context.Context, smallDep *rdd.ShuffleDep, big *rdd.RDD, bigKey expr.EvalFn, smallIsLeft bool, ns *NodeStats) (*rdd.RDD, error) {
	locs := e.Ctx.Tracker().Locations(smallDep.ID)
	ht := make(map[any][]row.Row)
	endSeg := ns.beginSegment(gctx)
	tr := obs.FromContext(gctx)
	for b := 0; b < smallDep.Partitioner.NumPartitions(); b++ {
		pairs, err := e.Ctx.Shuffle.Fetch(smallDep.ID, b, locs)
		if err != nil {
			return nil, err
		}
		tr.AddFetch(int64(len(pairs)))
		for _, p := range pairs {
			ht[p.K] = append(ht[p.K], p.V.(row.Row))
		}
	}
	endSeg()
	return e.probeBroadcast(ht, big, bigKey, smallIsLeft), nil
}

func (e *Engine) probeBroadcast(ht map[any][]row.Row, big *rdd.RDD, bigKey expr.EvalFn, buildIsLeft bool) *rdd.RDD {
	bc := e.Ctx.NewBroadcast(ht)
	return big.FlatMap(func(v any) []any {
		r := v.(row.Row)
		k := normalizeGroupKey(bigKey(r))
		table := bc.Value.(map[any][]row.Row)
		matches := table[k]
		if len(matches) == 0 {
			return nil
		}
		out := make([]any, 0, len(matches))
		for _, m := range matches {
			if buildIsLeft {
				out = append(out, concatRows(m, r))
			} else {
				out = append(out, concatRows(r, m))
			}
		}
		return out
	})
}

// tryCopartitionedJoin detects the §3.4 case: both children are scans
// of cached tables DISTRIBUTEd BY the join keys with identical
// partitioning. The join then runs as map tasks only.
func (e *Engine) tryCopartitionedJoin(j *plan.Join, stats *QueryStats) (*rdd.RDD, bool, error) {
	ls, lok := j.Left.(*plan.Scan)
	rs, rok := j.Right.(*plan.Scan)
	if !lok || !rok || !ls.Table.Cached() || !rs.Table.Cached() {
		return nil, false, nil
	}
	lm, rm := ls.Table.Mem, rs.Table.Mem
	if lm.Partitioner == nil || rm.Partitioner == nil {
		return nil, false, nil
	}
	lp, lok2 := lm.Partitioner.(shuffle.HashPartitioner)
	rp, rok2 := rm.Partitioner.(shuffle.HashPartitioner)
	if !lok2 || !rok2 || lp.N != rp.N {
		return nil, false, nil
	}
	// Join keys must be exactly the distribution columns.
	if !keyIsDistCol(j.LeftKey, ls) || !keyIsDistCol(j.RightKey, rs) {
		return nil, false, nil
	}
	stats.JoinStrategies = append(stats.JoinStrategies, "copartitioned:map-join")
	stats.ScannedPartitions += lm.NumPartitions() + rm.NumPartitions()

	leftScan := lm.Scan(nil, ls.NeededCols)
	rightScan := rm.Scan(nil, rs.NeededCols)
	lKey := e.evalFn(j.LeftKey)
	rKey := e.evalFn(j.RightKey)
	lFilter := scanFilterFn(e, ls)
	rFilter := scanFilterFn(e, rs)

	joined := leftScan.ZipPartitions(rightScan, func(part int, a, b rdd.Iter) rdd.Iter {
		ht := make(map[any][]row.Row)
		for {
			v, ok := a.Next()
			if !ok {
				break
			}
			r := v.(row.Row)
			if lFilter != nil && !lFilter(r) {
				continue
			}
			k := normalizeGroupKey(lKey(r))
			ht[k] = append(ht[k], r)
		}
		var out []any
		for {
			v, ok := b.Next()
			if !ok {
				break
			}
			r := v.(row.Row)
			if rFilter != nil && !rFilter(r) {
				continue
			}
			k := normalizeGroupKey(rKey(r))
			for _, m := range ht[k] {
				out = append(out, concatRows(m, r))
			}
		}
		return rdd.SliceIter(out)
	})
	return joined, true, nil
}

func scanFilterFn(e *Engine, s *plan.Scan) func(row.Row) bool {
	if len(s.Filters) == 0 {
		return nil
	}
	pred := e.evalFn(conjoinAll(s.Filters))
	return func(r row.Row) bool { return row.Truth(pred(r)) }
}

// keyIsDistCol reports whether key is a bare column reference to the
// scan's DISTRIBUTE BY column (in scan-projected coordinates).
func keyIsDistCol(key expr.Expr, s *plan.Scan) bool {
	col, ok := key.(*expr.Col)
	if !ok {
		return false
	}
	dist := s.Table.Mem.DistKeyCol
	if dist < 0 || col.Idx >= len(s.NeededCols) {
		return false
	}
	return s.NeededCols[col.Idx] == dist
}
