package exec

import (
	"shark/internal/row"
	"shark/internal/shuffle"
)

// Disk-shuffle serialization for aggregation states (used when the
// engine runs with shuffle.Disk, e.g. the §5 shuffle ablation or the
// public DiskShuffle option). The encoding is self-describing — it
// carries every accumulator field regardless of aggregate kind — so
// decoding needs no aggregate specs.
//
// Layout: [nGroup, groupVals..., nAccs, acc0..., acc1...] where each
// acc is [count, sumI, sumF, seen, min, max, nDistinct, distinct...].

const aggStateTag = "exec.aggState"

func init() {
	shuffle.RegisterDiskDecoder(aggStateTag, unmarshalAggState)
}

// MarshalShuffle implements shuffle.DiskMarshaler.
func (st *aggState) MarshalShuffle() (string, row.Row) {
	out := row.Row{int64(len(st.groupVals))}
	out = append(out, st.groupVals...)
	out = append(out, int64(len(st.accs)))
	for i := range st.accs {
		a := &st.accs[i]
		out = append(out, a.count, a.sumI, a.sumF, a.seen, a.min, a.max)
		out = append(out, int64(len(a.distinct)))
		for v := range a.distinct {
			out = append(out, v)
		}
	}
	return aggStateTag, out
}

func unmarshalAggState(r row.Row) any {
	i := 0
	next := func() any { v := r[i]; i++; return v }
	nG := next().(int64)
	st := &aggState{groupVals: make(row.Row, nG)}
	for g := int64(0); g < nG; g++ {
		st.groupVals[g] = next()
	}
	nA := next().(int64)
	st.accs = make([]aggAcc, nA)
	for a := int64(0); a < nA; a++ {
		acc := &st.accs[a]
		acc.count = next().(int64)
		acc.sumI = next().(int64)
		acc.sumF = next().(float64)
		acc.seen = next().(bool)
		acc.min = next()
		acc.max = next()
		nD := next().(int64)
		if nD > 0 {
			acc.distinct = make(map[any]struct{}, nD)
			for d := int64(0); d < nD; d++ {
				acc.distinct[next()] = struct{}{}
			}
		}
	}
	return st
}
