// Package exec is Shark's physical engine: it compiles logical plans
// into RDD pipelines on the simulated cluster. It implements the
// paper's execution techniques — memstore scans with map pruning
// (§3.5), two-phase hash aggregation whose reduce parallelism is
// chosen at run time by PDE bin-packing (§3.1.2), and join execution
// with static, adaptive (PDE) and co-partitioned strategies
// (§3.1.1, §3.4).
package exec

import (
	"context"
	"fmt"
	"io"
	"sort"

	"shark/internal/catalog"
	"shark/internal/dfs"
	"shark/internal/expr"
	"shark/internal/memtable"
	"shark/internal/obs"
	"shark/internal/pde"
	"shark/internal/plan"
	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/shuffle"
)

// StrategyMode selects how joins are planned.
type StrategyMode int

const (
	// StrategyStaticAdaptive (default) uses static analysis to pick
	// the likely-small side, pre-shuffles only that side, then decides
	// with observed sizes — the paper's best configuration (Fig. 8).
	StrategyStaticAdaptive StrategyMode = iota
	// StrategyAdaptive pre-shuffles both sides, then decides.
	StrategyAdaptive
	// StrategyStatic decides purely from catalog estimates.
	StrategyStatic
)

// String names the mode.
func (m StrategyMode) String() string {
	switch m {
	case StrategyAdaptive:
		return "adaptive"
	case StrategyStatic:
		return "static"
	}
	return "static+adaptive"
}

// Options tunes the engine.
type Options struct {
	// FineBucketsPerSlot controls shuffle granularity: fine buckets =
	// slots × this factor (PDE coalesces them into reduce tasks).
	// Default 4.
	FineBucketsPerSlot int
	// TargetPerReducerBytes sizes coalesced reduce partitions.
	// Default 4 MiB.
	TargetPerReducerBytes int64
	// BroadcastThreshold is the map-join size cutoff. Default 2 MiB.
	BroadcastThreshold int64
	// JoinStrategy selects join planning. Default StrategyStaticAdaptive.
	JoinStrategy StrategyMode
	// CompileExprs uses closure-compiled expressions (default true via
	// !DisableExprCompile).
	DisableExprCompile bool
	// DisablePruning turns off map pruning (ablation).
	DisablePruning bool
	// DisableCoalesce turns off PDE reducer coalescing: one reduce
	// task per fine bucket (the paper's "just run many tasks" mode).
	DisableCoalesce bool
	// DisableAdaptiveExec turns off every runtime re-planning decision
	// made from PDE statistics (the "adaptive execution off" ablation
	// knob): joins are planned purely from static estimates, hot reduce
	// buckets are never split, and reduce stages run one task per fine
	// bucket instead of sizing parallelism from observed bytes.
	DisableAdaptiveExec bool
	// SkewFactor flags a reduce bucket of a shuffle join as skewed when
	// its observed bytes strictly exceed SkewFactor × the mean bucket
	// size; skewed buckets are split across multiple reduce tasks.
	// Default 4.
	SkewFactor float64
}

func (o Options) withDefaults() Options {
	if o.FineBucketsPerSlot <= 0 {
		o.FineBucketsPerSlot = 4
	}
	if o.TargetPerReducerBytes <= 0 {
		o.TargetPerReducerBytes = 4 << 20
	}
	if o.BroadcastThreshold <= 0 {
		o.BroadcastThreshold = 2 << 20
	}
	if o.SkewFactor <= 0 {
		o.SkewFactor = 4
	}
	return o
}

// QueryStats reports what the engine did — the observability the
// experiments rely on.
type QueryStats struct {
	ScannedPartitions int
	PrunedPartitions  int
	JoinStrategies    []string
	ReducerCounts     []int
	ShuffleBytes      int64
}

// Engine compiles and runs logical plans.
type Engine struct {
	Ctx  *rdd.Context
	Cat  *catalog.Catalog
	FS   *dfs.FS
	opts Options
}

// New creates an engine.
func New(ctx *rdd.Context, cat *catalog.Catalog, fs *dfs.FS, opts Options) *Engine {
	return &Engine{Ctx: ctx, Cat: cat, FS: fs, opts: opts.withDefaults()}
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Result is a fully materialized query result.
type Result struct {
	Schema row.Schema
	Rows   []row.Row
	Stats  QueryStats
}

// CompileToRDD lowers a plan to a row RDD without running the final
// collect — the sql2rdd path. Top-level Sort/Limit nodes are not
// supported here (the session materializes those).
func (e *Engine) CompileToRDD(n plan.Node) (*rdd.RDD, error) {
	return e.CompileToRDDCtx(context.Background(), n)
}

// CompileToRDDCtx is CompileToRDD under a context: PDE pre-shuffles
// run during compilation execute under the attached job and honor
// cancellation.
func (e *Engine) CompileToRDDCtx(gctx context.Context, n plan.Node) (*rdd.RDD, error) {
	stats := &QueryStats{}
	return e.compile(gctx, n, stats, nil)
}

// Run executes a logical plan to completion.
func (e *Engine) Run(n plan.Node) (*Result, error) {
	return e.RunCtx(context.Background(), n)
}

// RunCtx executes a logical plan to completion under a context: every
// scheduler job it spawns (PDE map stages, the final collect) runs
// under the job attached by rdd.WithJob, and cancelling gctx aborts
// the query with an error wrapping context.Canceled.
func (e *Engine) RunCtx(gctx context.Context, n plan.Node) (*Result, error) {
	return e.runCtx(gctx, n, nil)
}

// RunAnalyzeCtx is RunCtx with EXPLAIN ANALYZE profiling: it returns
// the result plus the annotated per-node statistics tree. The
// blocking-segment wall times recorded on the tree are sequential
// master-side time, so their sum tracks the statement's wall time.
func (e *Engine) RunAnalyzeCtx(gctx context.Context, n plan.Node) (*Result, *NodeStats, error) {
	p := newProf(n)
	res, err := e.runCtx(gctx, n, p)
	return res, p.root, err
}

func (e *Engine) runCtx(gctx context.Context, n plan.Node, p *prof) (*Result, error) {
	stats := &QueryStats{}

	limit := int64(-1)
	var limNS, sortNS *NodeStats
	if l, ok := n.(*plan.Limit); ok {
		limit = l.N
		limNS = p.of(l)
		n = l.Child
	}
	var sortKeys []plan.SortKey
	if s, ok := n.(*plan.Sort); ok {
		sortKeys = s.Keys
		sortNS = p.of(s)
		n = s.Child
	}

	schema := n.Schema()
	r, err := e.compile(gctx, n, stats, p)
	if err != nil {
		return nil, err
	}

	// LIMIT pushdown: with no sort, each partition needs at most N rows.
	if limit >= 0 && sortKeys == nil {
		lim := limit
		r = r.MapPartitions(func(part int, in rdd.Iter) rdd.Iter {
			var taken int64
			return rdd.FuncIter(func() (any, bool) {
				if taken >= lim {
					return nil, false
				}
				v, ok := in.Next()
				if !ok {
					return nil, false
				}
				taken++
				return v, true
			})
		})
	}

	endCollect := p.of(n).beginSegment(gctx)
	raw, err := r.CollectCtx(gctx)
	if err != nil {
		return nil, err
	}
	endCollect()
	rows := make([]row.Row, len(raw))
	for i, v := range raw {
		rows[i] = v.(row.Row)
	}

	if sortKeys != nil {
		endSort := sortNS.beginSegment(gctx)
		keyFns := make([]expr.EvalFn, len(sortKeys))
		for i, k := range sortKeys {
			keyFns[i] = e.evalFn(k.Expr)
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for k, fn := range keyFns {
				c := compareNullable(fn(rows[i]), fn(rows[j]))
				if c == 0 {
					continue
				}
				if sortKeys[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		endSort()
		sortNS.AddRows(int64(len(rows)))
	}
	if limit >= 0 && int64(len(rows)) > limit {
		rows = rows[:limit]
	}
	limNS.AddRows(int64(len(rows)))
	return &Result{Schema: schema, Rows: rows, Stats: *stats}, nil
}

func compareNullable(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	return row.Compare(a, b)
}

// evalFn compiles or wraps an expression per engine options.
func (e *Engine) evalFn(x expr.Expr) expr.EvalFn {
	if e.opts.DisableExprCompile {
		return x.Eval
	}
	return x.Compile()
}

// fineBuckets returns the shuffle bucket count (finer than the reduce
// parallelism; PDE coalesces).
func (e *Engine) fineBuckets() int {
	return e.Ctx.Cluster.TotalSlots() * e.opts.FineBucketsPerSlot
}

// Adaptive-execution decision accounting: each runtime plan change is
// counted on the scheduler metrics and attributed to the statement's
// job (flowing into JobStats and Session.Stats()). Decisions are made
// master-side during compilation, under the statement's job context.

func (e *Engine) noteBroadcastConversion(gctx context.Context) {
	e.Ctx.Scheduler().Metrics().BroadcastConversions.Add(1)
	rdd.JobFrom(gctx).NoteBroadcastConversion()
	obs.FromContext(gctx).Decision("broadcast-conversion")
}

func (e *Engine) noteSkewSplits(gctx context.Context, n int) {
	if n <= 0 {
		return
	}
	e.Ctx.Scheduler().Metrics().SkewSplits.Add(int64(n))
	rdd.JobFrom(gctx).NoteSkewSplits(int64(n))
	obs.FromContext(gctx).Decision(fmt.Sprintf("skew-split x%d", n))
}

func (e *Engine) noteAdaptiveCoalesce(gctx context.Context) {
	e.Ctx.Scheduler().Metrics().AdaptiveCoalesces.Add(1)
	rdd.JobFrom(gctx).NoteAdaptiveCoalesce()
	obs.FromContext(gctx).Decision("adaptive-coalesce")
}

// compile lowers a plan node to an RDD of row.Row. gctx scopes the
// scheduler jobs some nodes run while compiling (PDE pre-shuffles,
// subquery materializations). p is the EXPLAIN ANALYZE profile being
// filled in, or nil (the untraced path: no wrapping, no counting).
func (e *Engine) compile(gctx context.Context, n plan.Node, stats *QueryStats, p *prof) (*rdd.RDD, error) {
	r, err := e.compileNode(gctx, n, stats, p)
	if err != nil {
		return nil, err
	}
	if ns := p.of(n); ns != nil {
		r = profileRows(r, ns)
	}
	return r, nil
}

func (e *Engine) compileNode(gctx context.Context, n plan.Node, stats *QueryStats, p *prof) (*rdd.RDD, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return e.compileScan(t, stats)
	case *plan.Filter:
		child, err := e.compile(gctx, t.Child, stats, p)
		if err != nil {
			return nil, err
		}
		pred := e.evalFn(t.Cond)
		return child.Filter(func(v any) bool { return row.Truth(pred(v.(row.Row))) }), nil
	case *plan.Project:
		child, err := e.compile(gctx, t.Child, stats, p)
		if err != nil {
			return nil, err
		}
		fns := make([]expr.EvalFn, len(t.Exprs))
		for i, x := range t.Exprs {
			fns[i] = e.evalFn(x)
		}
		return child.Map(func(v any) any {
			in := v.(row.Row)
			out := make(row.Row, len(fns))
			for i, f := range fns {
				out[i] = f(in)
			}
			return out
		}), nil
	case *plan.Aggregate:
		return e.compileAggregate(gctx, t, stats, p)
	case *plan.Join:
		return e.compileJoin(gctx, t, stats, p)
	case *plan.Sort:
		// Sort below the root (e.g. in a subquery): materialize and
		// re-sort at the master; results at this position are small in
		// every workload the paper evaluates.
		child, err := e.compile(gctx, t.Child, stats, p)
		if err != nil {
			return nil, err
		}
		endSeg := p.of(n).beginSegment(gctx)
		raw, err := child.CollectCtx(gctx)
		if err != nil {
			return nil, err
		}
		keyFns := make([]expr.EvalFn, len(t.Keys))
		for i, k := range t.Keys {
			keyFns[i] = e.evalFn(k.Expr)
		}
		sort.SliceStable(raw, func(i, j int) bool {
			for k, fn := range keyFns {
				c := compareNullable(fn(raw[i].(row.Row)), fn(raw[j].(row.Row)))
				if c == 0 {
					continue
				}
				if t.Keys[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		endSeg()
		return e.Ctx.Parallelize(raw, e.Ctx.Cluster.TotalSlots()), nil
	case *plan.Limit:
		child, err := e.compile(gctx, t.Child, stats, p)
		if err != nil {
			return nil, err
		}
		endSeg := p.of(n).beginSegment(gctx)
		raw, err := child.TakeCtx(gctx, int(t.N))
		if err != nil {
			return nil, err
		}
		endSeg()
		return e.Ctx.Parallelize(raw, 1), nil
	case plan.OneRow:
		return e.Ctx.Parallelize([]any{row.Row{}}, 1), nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T", n)
}

// ---------------------------------------------------------------------------
// Scans

func (e *Engine) compileScan(s *plan.Scan, stats *QueryStats) (*rdd.RDD, error) {
	var r *rdd.RDD
	if s.Table.Cached() {
		mem := s.Table.Mem
		parts := make([]int, mem.NumPartitions())
		for i := range parts {
			parts[i] = i
		}
		if !e.opts.DisablePruning && len(s.Pruning) > 0 {
			// Pruning predicates use scan-projected column positions;
			// the table statistics use full-schema positions. Remap.
			preds := make([]memtable.ColPredicate, 0, len(s.Pruning))
			for _, p := range s.Pruning {
				if p.Col < 0 || p.Col >= len(s.NeededCols) {
					continue
				}
				p.Col = s.NeededCols[p.Col]
				preds = append(preds, p)
			}
			surviving := mem.Prune(preds)
			stats.PrunedPartitions += len(parts) - len(surviving)
			parts = surviving
		}
		stats.ScannedPartitions += len(parts)
		r = mem.Scan(parts, s.NeededCols)
	} else {
		var err error
		r, err = e.dfsScan(s)
		if err != nil {
			return nil, err
		}
		stats.ScannedPartitions += r.NumPartitions()
	}
	if len(s.Filters) > 0 {
		pred := e.evalFn(conjoinAll(s.Filters))
		r = r.Filter(func(v any) bool { return row.Truth(pred(v.(row.Row))) })
	}
	return r, nil
}

func conjoinAll(es []expr.Expr) expr.Expr {
	out := es[0]
	for _, x := range es[1:] {
		out = &expr.And{L: out, R: x}
	}
	return out
}

// dfsScan reads an external table: one partition per DFS block, each
// task re-reading and re-parsing from disk (schema-on-read cost).
func (e *Engine) dfsScan(s *plan.Scan) (*rdd.RDD, error) {
	meta, err := e.FS.Stat(s.Table.File)
	if err != nil {
		return nil, err
	}
	file := s.Table.File
	fs := e.FS
	needed := append([]int(nil), s.NeededCols...)
	return e.Ctx.Source(
		fmt.Sprintf("dfsscan(%s)", s.Table.Name),
		len(meta.Blocks),
		func(tc *rdd.TaskContext, part int) rdd.Iter {
			rd, err := fs.OpenBlock(file, part)
			if err != nil {
				rdd.Fail(err)
			}
			return rdd.FuncIter(func() (any, bool) {
				rr, err := rd.Next()
				if err == io.EOF {
					rd.Close()
					return nil, false
				}
				if err != nil {
					rd.Close()
					rdd.Fail(err)
				}
				out := make(row.Row, len(needed))
				for i, c := range needed {
					out[i] = rr[c]
				}
				return out, true
			})
		},
		nil,
	), nil
}

// ---------------------------------------------------------------------------
// Aggregation: two-phase hash aggregation. Map tasks pre-aggregate
// locally (the map-side combine), shuffle partial states by group key,
// and PDE picks the reduce parallelism by bin-packing observed bucket
// sizes.

func (e *Engine) compileAggregate(gctx context.Context, a *plan.Aggregate, stats *QueryStats, p *prof) (*rdd.RDD, error) {
	ns := p.of(a)
	child, err := e.compile(gctx, a.Child, stats, p)
	if err != nil {
		return nil, err
	}
	groupFns := make([]expr.EvalFn, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groupFns[i] = e.evalFn(g)
	}
	argFns := make([]expr.EvalFn, len(a.Aggs))
	for i, spec := range a.Aggs {
		if spec.Arg != nil {
			argFns[i] = e.evalFn(spec.Arg)
		}
	}
	specs := a.Aggs

	// Partial aggregation per input partition.
	partial := child.MapPartitions(func(part int, in rdd.Iter) rdd.Iter {
		groups := make(map[any]*aggState)
		for {
			v, ok := in.Next()
			if !ok {
				break
			}
			r := v.(row.Row)
			key, groupVals := groupKey(groupFns, r)
			st := groups[key]
			if st == nil {
				st = newAggState(groupVals, specs)
				groups[key] = st
			}
			st.update(specs, argFns, r)
		}
		// Global aggregation must produce a row even over empty input
		// (COUNT(*) = 0, SUM = NULL), so emit an identity state.
		if len(groupFns) == 0 && len(groups) == 0 {
			groups[""] = newAggState(nil, specs)
		}
		out := make([]any, 0, len(groups))
		for key, st := range groups {
			out = append(out, shuffle.Pair{K: key, V: st})
		}
		return rdd.SliceIter(out)
	})

	nBuckets := e.fineBuckets()
	dep := e.Ctx.NewShuffleDep(partial, shuffle.HashPartitioner{N: nBuckets},
		func(x, y any) any { return x.(*aggState).merge(y.(*aggState), specs) })

	// PDE: materialize the map side, observe bucket sizes, coalesce.
	endSeg := ns.beginSegment(gctx)
	shufStats, err := e.Ctx.Scheduler().MaterializeShuffleCtx(gctx, dep)
	if err != nil {
		return nil, err
	}
	endSeg()
	stats.ShuffleBytes += shufStats.TotalBytes
	var groups [][]int
	if e.opts.DisableCoalesce || e.opts.DisableAdaptiveExec {
		groups = nil // identity: one reduce task per fine bucket
		stats.ReducerCounts = append(stats.ReducerCounts, nBuckets)
		ns.Notef("reducers=%d (static)", nBuckets)
	} else {
		// Adaptive reduce parallelism: the task count follows the
		// observed map-output volume, not a static default. Aggregate
		// buckets are never skew-split — a group's partial states must
		// finalize in exactly one task.
		target := pde.TargetReducers(shufStats.TotalBytes, e.opts.TargetPerReducerBytes,
			1, nBuckets)
		if target < e.Ctx.Cluster.TotalSlots() && shufStats.TotalRecords > int64(e.Ctx.Cluster.TotalSlots()) {
			target = e.Ctx.Cluster.TotalSlots()
		}
		groups = pde.Coalesce(shufStats.BucketBytes, target)
		stats.ReducerCounts = append(stats.ReducerCounts, len(groups))
		e.noteAdaptiveCoalesce(gctx)
		ns.Notef("reducers=%d (adaptive coalesce, %d buckets, %d shuffle bytes)",
			len(groups), nBuckets, shufStats.TotalBytes)
	}

	merged := e.Ctx.Shuffled(dep, groups, rdd.ReadCombine)
	nGroupCols := len(a.GroupBy)
	return merged.MapPartitions(func(part int, in rdd.Iter) rdd.Iter {
		return rdd.FuncIter(func() (any, bool) {
			v, ok := in.Next()
			if !ok {
				return nil, false
			}
			st := v.(shuffle.Pair).V.(*aggState)
			out := make(row.Row, nGroupCols+len(specs))
			copy(out, st.groupVals)
			for i, spec := range specs {
				out[nGroupCols+i] = st.finalize(i, spec)
			}
			return out, true
		})
	}), nil
}

// groupKey derives the shuffle key and the group values for a row.
// Single scalar keys are used directly; composite keys are encoded to
// a string (comparable, hashable).
func groupKey(groupFns []expr.EvalFn, r row.Row) (any, row.Row) {
	if len(groupFns) == 0 {
		return "", nil
	}
	vals := make(row.Row, len(groupFns))
	for i, f := range groupFns {
		vals[i] = f(r)
	}
	if len(vals) == 1 {
		return normalizeGroupKey(vals[0]), vals
	}
	return string(row.EncodeBinary(nil, vals)), vals
}

func normalizeGroupKey(v any) any {
	if v == nil {
		return "\x00null\x00" // map keys must be comparable; nil is, but keep it distinct from ""
	}
	return v
}

// aggState is the partial-aggregation accumulator shipped through the
// shuffle (memory mode keeps it as a pointer; the MR baseline uses its
// own row-encodable states).
type aggState struct {
	groupVals row.Row
	accs      []aggAcc
}

type aggAcc struct {
	count    int64
	sumI     int64
	sumF     float64
	seen     bool
	min, max any
	distinct map[any]struct{}
}

func newAggState(groupVals row.Row, specs []plan.AggSpec) *aggState {
	st := &aggState{groupVals: groupVals, accs: make([]aggAcc, len(specs))}
	for i, s := range specs {
		if s.Kind == plan.AggCountDistinct {
			st.accs[i].distinct = make(map[any]struct{})
		}
	}
	return st
}

func (st *aggState) update(specs []plan.AggSpec, argFns []expr.EvalFn, r row.Row) {
	for i, spec := range specs {
		acc := &st.accs[i]
		switch spec.Kind {
		case plan.AggCount:
			if argFns[i] == nil {
				acc.count++
			} else if argFns[i](r) != nil {
				acc.count++
			}
		case plan.AggCountDistinct:
			if v := argFns[i](r); v != nil {
				acc.distinct[normalizeGroupKey(v)] = struct{}{}
			}
		case plan.AggSum, plan.AggAvg:
			v := argFns[i](r)
			if v == nil {
				continue
			}
			acc.seen = true
			acc.count++
			switch x := v.(type) {
			case int64:
				acc.sumI += x
				acc.sumF += float64(x)
			case float64:
				acc.sumF += x
			}
		case plan.AggMin:
			if v := argFns[i](r); v != nil {
				if acc.min == nil || row.Compare(v, acc.min) < 0 {
					acc.min = v
				}
			}
		case plan.AggMax:
			if v := argFns[i](r); v != nil {
				if acc.max == nil || row.Compare(v, acc.max) > 0 {
					acc.max = v
				}
			}
		}
	}
}

// clone deep-copies the state. Merging never mutates its inputs:
// states live in shuffle buckets that retried or speculative reduce
// tasks may re-read, so in-place merging would double-count.
func (st *aggState) clone(specs []plan.AggSpec) *aggState {
	out := &aggState{groupVals: st.groupVals, accs: append([]aggAcc(nil), st.accs...)}
	for i, s := range specs {
		if s.Kind == plan.AggCountDistinct {
			m := make(map[any]struct{}, len(st.accs[i].distinct))
			for v := range st.accs[i].distinct {
				m[v] = struct{}{}
			}
			out.accs[i].distinct = m
		}
	}
	return out
}

// merge returns a fresh state holding st ⊕ other.
func (st *aggState) merge(other *aggState, specs []plan.AggSpec) *aggState {
	st = st.clone(specs)
	for i, spec := range specs {
		a, b := &st.accs[i], &other.accs[i]
		switch spec.Kind {
		case plan.AggCount:
			a.count += b.count
		case plan.AggCountDistinct:
			for v := range b.distinct {
				a.distinct[v] = struct{}{}
			}
		case plan.AggSum, plan.AggAvg:
			a.count += b.count
			a.sumI += b.sumI
			a.sumF += b.sumF
			a.seen = a.seen || b.seen
		case plan.AggMin:
			if b.min != nil && (a.min == nil || row.Compare(b.min, a.min) < 0) {
				a.min = b.min
			}
		case plan.AggMax:
			if b.max != nil && (a.max == nil || row.Compare(b.max, a.max) > 0) {
				a.max = b.max
			}
		}
	}
	return st
}

func (st *aggState) finalize(i int, spec plan.AggSpec) any {
	acc := &st.accs[i]
	switch spec.Kind {
	case plan.AggCount:
		return acc.count
	case plan.AggCountDistinct:
		return int64(len(acc.distinct))
	case plan.AggSum:
		if !acc.seen {
			return nil
		}
		if spec.Out == row.TInt {
			return acc.sumI
		}
		return acc.sumF
	case plan.AggAvg:
		if acc.count == 0 {
			return nil
		}
		return acc.sumF / float64(acc.count)
	case plan.AggMin:
		return acc.min
	case plan.AggMax:
		return acc.max
	}
	return nil
}
