package exec

import (
	"testing"
	"testing/quick"

	"shark/internal/catalog"
	"shark/internal/expr"
	"shark/internal/plan"
	"shark/internal/row"
	"shark/internal/shuffle"
)

func specAll() []plan.AggSpec {
	return []plan.AggSpec{
		{Kind: plan.AggCount, Out: row.TInt},
		{Kind: plan.AggSum, Arg: &expr.Col{Idx: 0, T: row.TInt}, Out: row.TInt},
		{Kind: plan.AggSum, Arg: &expr.Col{Idx: 1, T: row.TFloat}, Out: row.TFloat},
		{Kind: plan.AggAvg, Arg: &expr.Col{Idx: 1, T: row.TFloat}, Out: row.TFloat},
		{Kind: plan.AggMin, Arg: &expr.Col{Idx: 0, T: row.TInt}, Out: row.TInt},
		{Kind: plan.AggMax, Arg: &expr.Col{Idx: 0, T: row.TInt}, Out: row.TInt},
		{Kind: plan.AggCountDistinct, Arg: &expr.Col{Idx: 0, T: row.TInt}, Out: row.TInt},
	}
}

func argFnsFor(specs []plan.AggSpec) []expr.EvalFn {
	fns := make([]expr.EvalFn, len(specs))
	for i, s := range specs {
		if s.Arg != nil {
			fns[i] = s.Arg.Compile()
		}
	}
	return fns
}

func TestAggStateUpdateFinalize(t *testing.T) {
	specs := specAll()
	fns := argFnsFor(specs)
	st := newAggState(row.Row{"g"}, specs)
	for i := int64(1); i <= 4; i++ {
		st.update(specs, fns, row.Row{i, float64(i) * 2})
	}
	st.update(specs, fns, row.Row{int64(2), nil}) // duplicate + NULL float

	if st.finalize(0, specs[0]).(int64) != 5 {
		t.Errorf("count = %v", st.finalize(0, specs[0]))
	}
	if st.finalize(1, specs[1]).(int64) != 12 { // 1+2+3+4+2
		t.Errorf("sumI = %v", st.finalize(1, specs[1]))
	}
	if st.finalize(2, specs[2]).(float64) != 20 { // 2+4+6+8
		t.Errorf("sumF = %v", st.finalize(2, specs[2]))
	}
	if st.finalize(3, specs[3]).(float64) != 5 { // 20/4 non-null
		t.Errorf("avg = %v", st.finalize(3, specs[3]))
	}
	if st.finalize(4, specs[4]).(int64) != 1 || st.finalize(5, specs[5]).(int64) != 4 {
		t.Errorf("min/max = %v %v", st.finalize(4, specs[4]), st.finalize(5, specs[5]))
	}
	if st.finalize(6, specs[6]).(int64) != 4 { // distinct {1,2,3,4}
		t.Errorf("distinct = %v", st.finalize(6, specs[6]))
	}
}

func TestAggStateMergeDoesNotMutate(t *testing.T) {
	specs := specAll()
	fns := argFnsFor(specs)
	a := newAggState(row.Row{"g"}, specs)
	b := newAggState(row.Row{"g"}, specs)
	a.update(specs, fns, row.Row{int64(1), 1.0})
	b.update(specs, fns, row.Row{int64(2), 2.0})

	merged := a.merge(b, specs)
	// inputs unchanged (retried reduce tasks re-read them)
	if a.accs[0].count != 1 || b.accs[0].count != 1 {
		t.Fatal("merge mutated an input state")
	}
	if merged.finalize(0, specs[0]).(int64) != 2 {
		t.Errorf("merged count = %v", merged.finalize(0, specs[0]))
	}
	// merging twice must give identical results (idempotent inputs)
	again := a.merge(b, specs)
	if again.finalize(1, specs[1]).(int64) != merged.finalize(1, specs[1]).(int64) {
		t.Error("re-merge differs")
	}
}

func TestAggStateMergeAssociativeProperty(t *testing.T) {
	specs := specAll()
	fns := argFnsFor(specs)
	f := func(vals []int8) bool {
		if len(vals) < 3 {
			return true
		}
		mk := func(xs []int8) *aggState {
			st := newAggState(row.Row{"g"}, specs)
			for _, x := range xs {
				st.update(specs, fns, row.Row{int64(x), float64(x)})
			}
			return st
		}
		third := len(vals) / 3
		a, b, c := mk(vals[:third]), mk(vals[third:2*third]), mk(vals[2*third:])
		left := a.merge(b, specs).merge(c, specs)
		right := a.merge(b.merge(c, specs), specs)
		for i, s := range specs {
			lv, rv := left.finalize(i, s), right.finalize(i, s)
			if (lv == nil) != (rv == nil) {
				return false
			}
			if lv != nil && !row.Equal(lv, rv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAggStateDiskRoundTrip(t *testing.T) {
	specs := specAll()
	fns := argFnsFor(specs)
	st := newAggState(row.Row{"grp", int64(7)}, specs)
	for i := int64(0); i < 10; i++ {
		st.update(specs, fns, row.Row{i % 4, float64(i)})
	}
	tag, fields := st.MarshalShuffle()
	back := unmarshalAggState(fields).(*aggState)
	if tag != aggStateTag {
		t.Errorf("tag = %q", tag)
	}
	if len(back.groupVals) != 2 || back.groupVals[0].(string) != "grp" {
		t.Errorf("groupVals = %v", back.groupVals)
	}
	for i, s := range specs {
		a, b := st.finalize(i, s), back.finalize(i, s)
		if (a == nil) != (b == nil) || (a != nil && !row.Equal(a, b)) {
			t.Errorf("spec %d: %v != %v after round trip", i, b, a)
		}
	}
	// round-tripped states must still merge
	merged := back.merge(st, specs)
	if merged.finalize(0, specs[0]).(int64) != 20 {
		t.Errorf("merged count = %v", merged.finalize(0, specs[0]))
	}
}

func TestGroupKeyForms(t *testing.T) {
	single := []expr.EvalFn{(&expr.Col{Idx: 0, T: row.TInt}).Compile()}
	k, vals := groupKey(single, row.Row{int64(5)})
	if k.(int64) != 5 || vals[0].(int64) != 5 {
		t.Errorf("single key = %v", k)
	}
	// nil single key distinct from empty-string key
	kNil, _ := groupKey(single, row.Row{nil})
	if kNil == "" {
		t.Error("nil key must not collide with empty string")
	}
	double := []expr.EvalFn{
		(&expr.Col{Idx: 0, T: row.TInt}).Compile(),
		(&expr.Col{Idx: 1, T: row.TString}).Compile(),
	}
	k1, _ := groupKey(double, row.Row{int64(1), "a"})
	k2, _ := groupKey(double, row.Row{int64(1), "b"})
	if k1 == k2 {
		t.Error("composite keys must differ")
	}
	k3, _ := groupKey(double, row.Row{int64(1), "a"})
	if k1 != k3 {
		t.Error("composite keys must be stable")
	}
	empty, vals := groupKey(nil, row.Row{int64(9)})
	if empty.(string) != "" || vals != nil {
		t.Error("no group-by → constant key")
	}
}

func TestEstimateSideUDFBlindness(t *testing.T) {
	cat := &catalog.Table{Name: "t", Schema: row.Schema{{Name: "a", Type: row.TInt}}, EstRows: 1000}
	scanPlain := &plan.Scan{Table: cat, NeededCols: []int{0}}
	est0 := estimateSide(scanPlain)

	// simple predicate discounts the estimate
	scanFiltered := &plan.Scan{Table: cat, NeededCols: []int{0},
		Filters: []expr.Expr{&expr.Cmp{Op: expr.Gt, L: &expr.Col{Idx: 0, T: row.TInt}, R: expr.NewConst(int64(1))}}}
	if estimateSide(scanFiltered) >= est0 {
		t.Error("simple filter should discount the estimate")
	}

	// UDF predicate must NOT discount (static optimizer is blind)
	udf := &expr.UDF{Name: "F", Ret: row.TBool, MinArgs: 1, MaxArgs: 1, RetFromArg: -1,
		Fn: func(args []any) any { return true }}
	call, _ := expr.NewCall(udf, []expr.Expr{&expr.Col{Idx: 0, T: row.TInt}})
	scanUDF := &plan.Scan{Table: cat, NeededCols: []int{0}, Filters: []expr.Expr{call}}
	if estimateSide(scanUDF) != est0 {
		t.Errorf("UDF filter should not change estimate: %d vs %d", estimateSide(scanUDF), est0)
	}
}

func TestJoinBucketSwapPreservesColumnOrder(t *testing.T) {
	build := []shuffle.Pair{{K: int64(1), V: row.Row{"L", int64(1)}}}
	probe := []shuffle.Pair{{K: int64(1), V: row.Row{"R", 9.5}}}
	// build side is left
	out := joinBucket(nil, build, probe, false)
	r := out[0].(row.Row)
	if r[0].(string) != "L" || r[2].(string) != "R" {
		t.Errorf("unswapped order: %v", r)
	}
	// build side is right: output must still be left++right
	out = joinBucket(nil, probe, build, true)
	r = out[0].(row.Row)
	if r[0].(string) != "L" || r[2].(string) != "R" {
		t.Errorf("swapped order: %v", r)
	}
}

func TestJoinBucketNullKeysDropped(t *testing.T) {
	build := []shuffle.Pair{{K: nil, V: row.Row{"x"}}}
	probe := []shuffle.Pair{{K: nil, V: row.Row{"y"}}}
	if out := joinBucket(nil, build, probe, false); len(out) != 0 {
		t.Errorf("NULL keys must not join: %v", out)
	}
}
