package mr

import (
	"fmt"

	"shark/internal/dfs"
	"shark/internal/expr"
	"shark/internal/plan"
	"shark/internal/row"
)

// ---------------------------------------------------------------------------
// Aggregation as one MapReduce job: map-side partial states (Hadoop
// combiner), shuffle by group key, reduce-side finalize. Queries with
// COUNT(DISTINCT) ship raw values instead (no combiner), as Hive does.

// aggStateWidth returns the number of state fields per aggregate kind
// in the encodable partial-state row.
func aggStateWidth(k plan.AggKind) int {
	switch k {
	case plan.AggSum:
		return 3 // seen, sumI, sumF
	case plan.AggAvg:
		return 2 // count, sumF
	default:
		return 1 // count / min / max
	}
}

func (h *Hive) compileAggregate(a *plan.Aggregate, st *runState) (*pipe, error) {
	child, err := h.compile(a.Child, st)
	if err != nil {
		return nil, err
	}
	groupFns := make([]expr.EvalFn, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groupFns[i] = h.evalFn(g)
	}
	argFns := make([]expr.EvalFn, len(a.Aggs))
	for i, s := range a.Aggs {
		if s.Arg != nil {
			argFns[i] = h.evalFn(s.Arg)
		}
	}
	specs := a.Aggs
	nG := len(a.GroupBy)
	rawMode := false
	for _, s := range specs {
		if s.Kind == plan.AggCountDistinct {
			rawMode = true
		}
	}

	inner := child.fn(h)
	out := h.tmpName()
	job := &Job{
		Name:         "aggregate",
		Output:       out,
		OutputSchema: a.Schema(),
		OutputFormat: dfs.Binary,
		NumReduces:   h.numReduces(h.inputBytes(child.files)),
	}

	if rawMode {
		job.Inputs = []InputGroup{{Files: child.files, Map: func(r row.Row, emit func(any, row.Row)) {
			for _, rr := range inner(r) {
				key, groupVals := mrGroupKey(groupFns, rr)
				payload := make(row.Row, 0, nG+len(specs))
				payload = append(payload, groupVals...)
				for i := range specs {
					if argFns[i] != nil {
						payload = append(payload, argFns[i](rr))
					} else {
						payload = append(payload, nil)
					}
				}
				emit(key, payload)
			}
		}}}
		job.Reduce = func(key any, vals []row.Row, emit func(row.Row)) {
			accs := newMRAccs(specs)
			var groupVals row.Row
			for _, v := range vals {
				groupVals = v[:nG]
				for i, spec := range specs {
					accs[i].addRaw(spec, v[nG+i])
				}
			}
			emit(finalizeMR(groupVals, accs, specs, nG))
		}
	} else {
		stateWidths := make([]int, len(specs))
		for i, s := range specs {
			stateWidths[i] = aggStateWidth(s.Kind)
		}
		job.Inputs = []InputGroup{{Files: child.files, Map: func(r row.Row, emit func(any, row.Row)) {
			for _, rr := range inner(r) {
				key, groupVals := mrGroupKey(groupFns, rr)
				state := make(row.Row, 0, nG+totalWidth(stateWidths))
				state = append(state, groupVals...)
				for i, spec := range specs {
					var v any
					if argFns[i] != nil {
						v = argFns[i](rr)
					}
					state = appendInitState(state, spec, v)
				}
				emit(key, state)
			}
		}}}
		job.Combine = func(key any, vals []row.Row) []row.Row {
			return []row.Row{mergeStates(vals, specs, stateWidths, nG)}
		}
		job.Reduce = func(key any, vals []row.Row, emit func(row.Row)) {
			merged := mergeStates(vals, specs, stateWidths, nG)
			accs := statesToAccs(merged, specs, stateWidths, nG)
			emit(finalizeMR(merged[:nG], accs, specs, nG))
		}
	}

	res, err := h.Eng.Run(job)
	if err != nil {
		return nil, err
	}
	st.jobs++
	st.mapTasks += res.MapTasks
	st.reduceTasks += res.ReduceTasks
	st.cleanups = append(st.cleanups, out)
	files := res.OutputFiles
	if len(a.GroupBy) == 0 && res.OutputRows == 0 {
		// Global aggregation over empty input still yields one row
		// (COUNT = 0, SUM = NULL).
		extra := out + "/empty-group"
		w, err := h.Eng.FS.Create(extra, dfs.Binary, a.Schema())
		if err != nil {
			return nil, err
		}
		if err := w.Write(finalizeMR(nil, newMRAccs(specs), specs, 0)); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		files = append(files, extra)
	}
	return &pipe{files: files, inSchema: a.Schema(), outSchema: a.Schema(), temp: true}, nil
}

func totalWidth(ws []int) int {
	t := 0
	for _, w := range ws {
		t += w
	}
	return t
}

// mrGroupKey mirrors the Shark engine's group-key normalization.
func mrGroupKey(groupFns []expr.EvalFn, r row.Row) (any, row.Row) {
	if len(groupFns) == 0 {
		return "", nil
	}
	vals := make(row.Row, len(groupFns))
	for i, f := range groupFns {
		vals[i] = f(r)
	}
	if len(vals) == 1 {
		if vals[0] == nil {
			return "\x00null\x00", vals
		}
		return vals[0], vals
	}
	return string(row.EncodeBinary(nil, vals)), vals
}

// appendInitState writes the initial partial state for one row's
// contribution to one aggregate.
func appendInitState(state row.Row, spec plan.AggSpec, v any) row.Row {
	switch spec.Kind {
	case plan.AggCount:
		var c int64
		if spec.Arg == nil || v != nil {
			c = 1
		}
		return append(state, c)
	case plan.AggSum:
		if v == nil {
			return append(state, int64(0), int64(0), float64(0))
		}
		i, _ := row.AsInt(v)
		f, _ := row.AsFloat(v)
		return append(state, int64(1), i, f)
	case plan.AggAvg:
		if v == nil {
			return append(state, int64(0), float64(0))
		}
		f, _ := row.AsFloat(v)
		return append(state, int64(1), f)
	case plan.AggMin, plan.AggMax:
		return append(state, v)
	}
	panic(fmt.Sprintf("mr: bad state kind %v", spec.Kind))
}

// mergeStates folds partial-state rows into one.
func mergeStates(vals []row.Row, specs []plan.AggSpec, widths []int, nG int) row.Row {
	out := vals[0].Clone()
	for _, v := range vals[1:] {
		off := nG
		for i, spec := range specs {
			switch spec.Kind {
			case plan.AggCount:
				out[off] = out[off].(int64) + v[off].(int64)
			case plan.AggSum:
				out[off] = out[off].(int64) + v[off].(int64)
				out[off+1] = out[off+1].(int64) + v[off+1].(int64)
				out[off+2] = out[off+2].(float64) + v[off+2].(float64)
			case plan.AggAvg:
				out[off] = out[off].(int64) + v[off].(int64)
				out[off+1] = out[off+1].(float64) + v[off+1].(float64)
			case plan.AggMin:
				if v[off] != nil && (out[off] == nil || row.Compare(v[off], out[off]) < 0) {
					out[off] = v[off]
				}
			case plan.AggMax:
				if v[off] != nil && (out[off] == nil || row.Compare(v[off], out[off]) > 0) {
					out[off] = v[off]
				}
			}
			off += widths[i]
		}
	}
	return out
}

// mrAcc is the reduce-side accumulator (also used in raw mode).
type mrAcc struct {
	count    int64
	sumI     int64
	sumF     float64
	seen     bool
	min, max any
	distinct map[any]struct{}
}

func newMRAccs(specs []plan.AggSpec) []*mrAcc {
	out := make([]*mrAcc, len(specs))
	for i, s := range specs {
		out[i] = &mrAcc{}
		if s.Kind == plan.AggCountDistinct {
			out[i].distinct = make(map[any]struct{})
		}
	}
	return out
}

func (a *mrAcc) addRaw(spec plan.AggSpec, v any) {
	switch spec.Kind {
	case plan.AggCount:
		if spec.Arg == nil || v != nil {
			a.count++
		}
	case plan.AggCountDistinct:
		if v != nil {
			a.distinct[v] = struct{}{}
		}
	case plan.AggSum, plan.AggAvg:
		if v == nil {
			return
		}
		a.seen = true
		a.count++
		i, _ := row.AsInt(v)
		f, _ := row.AsFloat(v)
		a.sumI += i
		a.sumF += f
	case plan.AggMin:
		if v != nil && (a.min == nil || row.Compare(v, a.min) < 0) {
			a.min = v
		}
	case plan.AggMax:
		if v != nil && (a.max == nil || row.Compare(v, a.max) > 0) {
			a.max = v
		}
	}
}

func statesToAccs(state row.Row, specs []plan.AggSpec, widths []int, nG int) []*mrAcc {
	accs := newMRAccs(specs)
	off := nG
	for i, spec := range specs {
		a := accs[i]
		switch spec.Kind {
		case plan.AggCount:
			a.count = state[off].(int64)
		case plan.AggSum:
			a.seen = state[off].(int64) > 0
			a.sumI = state[off+1].(int64)
			a.sumF = state[off+2].(float64)
		case plan.AggAvg:
			a.count = state[off].(int64)
			a.sumF = state[off+1].(float64)
		case plan.AggMin:
			a.min = state[off]
		case plan.AggMax:
			a.max = state[off]
		}
		off += widths[i]
	}
	return accs
}

func finalizeMR(groupVals row.Row, accs []*mrAcc, specs []plan.AggSpec, nG int) row.Row {
	out := make(row.Row, nG+len(specs))
	copy(out, groupVals)
	for i, spec := range specs {
		a := accs[i]
		switch spec.Kind {
		case plan.AggCount:
			out[nG+i] = a.count
		case plan.AggCountDistinct:
			out[nG+i] = int64(len(a.distinct))
		case plan.AggSum:
			if !a.seen {
				out[nG+i] = nil
			} else if spec.Out == row.TInt {
				out[nG+i] = a.sumI
			} else {
				out[nG+i] = a.sumF
			}
		case plan.AggAvg:
			if a.count == 0 {
				out[nG+i] = nil
			} else {
				out[nG+i] = a.sumF / float64(a.count)
			}
		case plan.AggMin:
			out[nG+i] = a.min
		case plan.AggMax:
			out[nG+i] = a.max
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Join as one MapReduce job: both inputs mapped to (key, tag+row),
// reduce performs a per-key hash join (Hive's "common join").

func (h *Hive) compileJoin(j *plan.Join, st *runState) (*pipe, error) {
	left, err := h.compile(j.Left, st)
	if err != nil {
		return nil, err
	}
	right, err := h.compile(j.Right, st)
	if err != nil {
		return nil, err
	}
	lKey := h.evalFn(j.LeftKey)
	rKey := h.evalFn(j.RightKey)
	lFn, rFn := left.fn(h), right.fn(h)
	nL := len(j.Left.Schema())

	out := h.tmpName()
	job := &Job{
		Name:         "join",
		Output:       out,
		OutputSchema: j.Schema(),
		OutputFormat: dfs.Binary,
		NumReduces:   h.numReduces(h.inputBytes(left.files) + h.inputBytes(right.files)),
		Inputs: []InputGroup{
			{Files: left.files, Map: tagMapper(lFn, lKey, 0)},
			{Files: right.files, Map: tagMapper(rFn, rKey, 1)},
		},
		Reduce: func(key any, vals []row.Row, emit func(row.Row)) {
			var lefts, rights []row.Row
			for _, v := range vals {
				if v[0].(int64) == 0 {
					lefts = append(lefts, v[1:])
				} else {
					rights = append(rights, v[1:])
				}
			}
			for _, l := range lefts {
				for _, r := range rights {
					outRow := make(row.Row, 0, nL+len(r))
					outRow = append(outRow, l...)
					outRow = append(outRow, r...)
					emit(outRow)
				}
			}
		},
	}
	res, err := h.Eng.Run(job)
	if err != nil {
		return nil, err
	}
	st.jobs++
	st.mapTasks += res.MapTasks
	st.reduceTasks += res.ReduceTasks
	st.cleanups = append(st.cleanups, out)
	return &pipe{files: res.OutputFiles, inSchema: j.Schema(), outSchema: j.Schema(), temp: true}, nil
}

func tagMapper(fn func(row.Row) []row.Row, keyFn expr.EvalFn, tag int64) func(row.Row, func(any, row.Row)) {
	return func(r row.Row, emit func(any, row.Row)) {
		for _, rr := range fn(r) {
			k := keyFn(rr)
			if k == nil {
				continue
			}
			tagged := make(row.Row, 0, len(rr)+1)
			tagged = append(tagged, tag)
			tagged = append(tagged, rr...)
			emit(k, tagged)
		}
	}
}
