package mr

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"shark/internal/catalog"
	"shark/internal/cluster"
	"shark/internal/dfs"
	"shark/internal/plan"
	"shark/internal/row"
	"shark/internal/sqlparse"
)

var visitsSchema = row.Schema{
	{Name: "sourceIP", Type: row.TString},
	{Name: "destURL", Type: row.TString},
	{Name: "adRevenue", Type: row.TFloat},
	{Name: "countryCode", Type: row.TString},
}

var rankingsSchema = row.Schema{
	{Name: "pageURL", Type: row.TString},
	{Name: "pageRank", Type: row.TInt},
}

type env struct {
	eng *Engine
	fs  *dfs.FS
	cat *catalog.Catalog
}

func newEnv(t *testing.T) *env {
	t.Helper()
	// Fast profile for unit tests; benchmarks use HadoopProfile.
	c := cluster.New(cluster.Config{Workers: 4, Slots: 2, Profile: cluster.Profile{Mode: cluster.EventDriven}})
	t.Cleanup(c.Close)
	fs, err := dfs.New(dfs.Config{Dir: t.TempDir(), BlockSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return &env{eng: NewEngine(c, fs, t.TempDir()), fs: fs, cat: catalog.New()}
}

func (e *env) writeTable(t *testing.T, name string, schema row.Schema, rows []row.Row) {
	t.Helper()
	w, err := e.fs.Create("data/"+name, dfs.Text, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.cat.Register(&catalog.Table{
		Name: name, Schema: schema, File: "data/" + name, Format: dfs.Text,
		EstRows: int64(len(rows)),
	}); err != nil {
		t.Fatal(err)
	}
}

func genVisits(n int) []row.Row {
	countries := []string{"US", "CA", "VN", "DE", "JP"}
	out := make([]row.Row, n)
	for i := 0; i < n; i++ {
		out[i] = row.Row{
			fmt.Sprintf("10.0.%d.%d", i%64, (i*7)%64),
			fmt.Sprintf("url-%d", i%100),
			float64(i%50) * 0.5,
			countries[i%len(countries)],
		}
	}
	return out
}

func genRankings(n int) []row.Row {
	out := make([]row.Row, n)
	for i := 0; i < n; i++ {
		out[i] = row.Row{fmt.Sprintf("url-%d", i), int64((i * 37) % 1000)}
	}
	return out
}

func (e *env) hiveQuery(t *testing.T, sql string, opts HiveOptions) *Result {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Analyze(e.cat, stmt.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewHive(e.eng, opts).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRawMapReduceJob(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "visits", visitsSchema, genVisits(1000))
	job := &Job{
		Name: "wordcount-ish",
		Inputs: []InputGroup{{
			Files: []string{"data/visits"},
			Map: func(r row.Row, emit func(any, row.Row)) {
				emit(r[3], row.Row{int64(1)})
			},
		}},
		Combine: func(key any, vals []row.Row) []row.Row {
			var n int64
			for _, v := range vals {
				n += v[0].(int64)
			}
			return []row.Row{{n}}
		},
		Reduce: func(key any, vals []row.Row, emit func(row.Row)) {
			var n int64
			for _, v := range vals {
				n += v[0].(int64)
			}
			emit(row.Row{key, n})
		},
		NumReduces:   3,
		Output:       "out/counts",
		OutputSchema: row.Schema{{Name: "country", Type: row.TString}, {Name: "n", Type: row.TInt}},
		OutputFormat: dfs.Binary,
	}
	res, err := e.eng.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.eng.ReadOutput(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("groups = %d", len(rows))
	}
	total := int64(0)
	for _, r := range rows {
		total += r[1].(int64)
	}
	if total != 1000 {
		t.Errorf("total = %d", total)
	}
	if res.MapTasks < 2 {
		t.Errorf("expected multiple map tasks, got %d", res.MapTasks)
	}
}

func TestHiveSelection(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "rankings", rankingsSchema, genRankings(2000))
	res := e.hiveQuery(t, "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 900", HiveOptions{})
	want := 0
	for _, r := range genRankings(2000) {
		if r[1].(int64) > 900 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
	if res.Jobs != 1 {
		t.Errorf("selection should be one map-only job, got %d", res.Jobs)
	}
}

func TestHiveAggregation(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "visits", visitsSchema, genVisits(2500))
	res := e.hiveQuery(t, `SELECT countryCode, COUNT(*) AS c, SUM(adRevenue) AS rev, AVG(adRevenue)
		FROM visits GROUP BY countryCode ORDER BY countryCode`, HiveOptions{NumReduces: 4})

	type agg struct {
		n   int64
		sum float64
	}
	ref := map[string]*agg{}
	for _, r := range genVisits(2500) {
		a := ref[r[3].(string)]
		if a == nil {
			a = &agg{}
			ref[r[3].(string)] = a
		}
		a.n++
		a.sum += r[2].(float64)
	}
	if len(res.Rows) != len(ref) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(ref))
	}
	for _, r := range res.Rows {
		a := ref[r[0].(string)]
		if r[1].(int64) != a.n {
			t.Errorf("%v count = %v, want %d", r[0], r[1], a.n)
		}
		if math.Abs(r[2].(float64)-a.sum) > 1e-6 {
			t.Errorf("%v sum = %v, want %v", r[0], r[2], a.sum)
		}
		if math.Abs(r[3].(float64)-a.sum/float64(a.n)) > 1e-9 {
			t.Errorf("%v avg = %v", r[0], r[3])
		}
	}
}

func TestHiveCountDistinct(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "visits", visitsSchema, genVisits(1000))
	res := e.hiveQuery(t, `SELECT COUNT(*), COUNT(DISTINCT destURL) FROM visits`, HiveOptions{})
	if res.Rows[0][0].(int64) != 1000 || res.Rows[0][1].(int64) != 100 {
		t.Errorf("counts = %v", res.Rows[0])
	}
}

func TestHiveJoinThenAggregate(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "rankings", rankingsSchema, genRankings(300))
	e.writeTable(t, "visits", visitsSchema, genVisits(1500))
	res := e.hiveQuery(t, `SELECT visits.countryCode, SUM(visits.adRevenue) AS rev
		FROM rankings, visits WHERE rankings.pageURL = visits.destURL
		GROUP BY visits.countryCode ORDER BY visits.countryCode`, HiveOptions{NumReduces: 4})
	// two MR jobs: join then aggregate
	if res.Jobs < 2 {
		t.Errorf("join+agg should be >= 2 jobs, got %d", res.Jobs)
	}

	ranks := map[string]bool{}
	for _, r := range genRankings(300) {
		ranks[r[0].(string)] = true
	}
	ref := map[string]float64{}
	for _, v := range genVisits(1500) {
		if ranks[v[1].(string)] {
			ref[v[3].(string)] += v[2].(float64)
		}
	}
	if len(res.Rows) != len(ref) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(ref))
	}
	for _, r := range res.Rows {
		if math.Abs(r[1].(float64)-ref[r[0].(string)]) > 1e-6 {
			t.Errorf("%v: %v != %v", r[0], r[1], ref[r[0].(string)])
		}
	}
}

func TestHiveOrderByLimit(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "visits", visitsSchema, genVisits(800))
	res := e.hiveQuery(t, `SELECT countryCode, COUNT(*) AS c FROM visits
		GROUP BY countryCode ORDER BY c DESC LIMIT 2`, HiveOptions{})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].(int64) < res.Rows[1][1].(int64) {
		t.Error("not descending")
	}
}

func TestHiveRejectsCachedTables(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "visits", visitsSchema, genVisits(10))
	// register a fake memstore table
	e.cat.Replace(&catalog.Table{Name: "cached", Schema: visitsSchema})
	stmt, _ := sqlparse.Parse("SELECT COUNT(*) FROM cached")
	p, err := plan.Analyze(e.cat, stmt.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHive(e.eng, HiveOptions{}).Run(p); err == nil {
		t.Error("hive over non-DFS table must fail")
	}
}

func TestAutoReducerEstimate(t *testing.T) {
	h := NewHive(nil, HiveOptions{PerReducerBytes: 100})
	if got := h.numReduces(1000); got != 10 {
		t.Errorf("auto reducers = %d", got)
	}
	if got := h.numReduces(5); got != 1 {
		t.Errorf("min clamp = %d", got)
	}
	h2 := NewHive(nil, HiveOptions{NumReduces: 7})
	if got := h2.numReduces(1 << 40); got != 7 {
		t.Errorf("tuned = %d", got)
	}
}

func TestIntermediatesCleanedUp(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "visits", visitsSchema, genVisits(500))
	e.hiveQuery(t, `SELECT countryCode, COUNT(*) FROM visits GROUP BY countryCode`, HiveOptions{})
	leftovers := e.fs.List("tmp/")
	if len(leftovers) != 0 {
		t.Errorf("intermediates not cleaned: %v", leftovers)
	}
}

func TestHiveSortedOutputStable(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "visits", visitsSchema, genVisits(600))
	a := e.hiveQuery(t, `SELECT destURL, COUNT(*) FROM visits GROUP BY destURL ORDER BY destURL`, HiveOptions{NumReduces: 3})
	b := e.hiveQuery(t, `SELECT destURL, COUNT(*) FROM visits GROUP BY destURL ORDER BY destURL`, HiveOptions{NumReduces: 5})
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ across reducer counts: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i][0] != b.Rows[i][0] || a.Rows[i][1] != b.Rows[i][1] {
			t.Errorf("row %d differs: %v vs %v", i, a.Rows[i], b.Rows[i])
		}
	}
	sort.SliceIsSorted(a.Rows, func(i, j int) bool {
		return a.Rows[i][0].(string) < a.Rows[j][0].(string)
	})
}

func TestHiveEmptyGlobalAggregate(t *testing.T) {
	e := newEnv(t)
	e.writeTable(t, "visits", visitsSchema, genVisits(100))
	res := e.hiveQuery(t, `SELECT COUNT(*), SUM(adRevenue) FROM visits WHERE adRevenue > 1e12`, HiveOptions{})
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].(int64) != 0 || res.Rows[0][1] != nil {
		t.Errorf("empty agg = %v", res.Rows[0])
	}
}
