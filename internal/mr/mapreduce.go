// Package mr implements the Hadoop/Hive baseline the paper compares
// against: a rigid map→sort→shuffle→reduce engine whose map outputs go
// to local disk, whose inter-job intermediates are materialized to the
// replicated DFS, and whose tasks are assigned by heartbeat polling
// with multi-second (scaled) launch overhead. A Hive-style compiler
// lowers the same logical plans the Shark engine runs into chains of
// MapReduce jobs, reproducing the cost structure §7.1 dissects.
package mr

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"shark/internal/cluster"
	"shark/internal/dfs"
	"shark/internal/row"
	"shark/internal/shuffle"
)

// Engine runs MapReduce jobs on a (typically Hadoop-profiled) cluster.
type Engine struct {
	Cluster *cluster.Cluster
	FS      *dfs.FS
	Shuffle *shuffle.Service // Disk mode: spill files on local disk

	jobSeq  atomic.Int64
	retries int
}

// NewEngine creates a MapReduce engine. dir holds shuffle spill files.
func NewEngine(c *cluster.Cluster, fs *dfs.FS, dir string) *Engine {
	return &Engine{
		Cluster: c,
		FS:      fs,
		Shuffle: shuffle.NewService(c, shuffle.Disk, dir),
		retries: 3,
	}
}

// InputGroup is one input source of a job with its own map function
// (joins read two groups, tagged).
type InputGroup struct {
	// Files are DFS files whose blocks become map splits.
	Files []string
	// Map transforms one input row into zero or more (key, value)
	// pairs.
	Map func(r row.Row, emit func(k any, v row.Row))
}

// Job is one MapReduce job.
type Job struct {
	Name   string
	Inputs []InputGroup
	// Combine optionally merges a key's values map-side after the
	// sort (Hadoop's combiner).
	Combine func(key any, vals []row.Row) []row.Row
	// Reduce folds a key's values into output rows.
	Reduce func(key any, vals []row.Row, emit func(row.Row))
	// NumReduces is the reduce-task count — the knob Hive is so
	// sensitive to (§6.3). Required >= 1.
	NumReduces int
	// Output names the DFS file prefix; each reduce writes
	// "<Output>/part-<i>".
	Output       string
	OutputSchema row.Schema
	OutputFormat dfs.Format
}

// JobResult describes a finished job.
type JobResult struct {
	OutputFiles []string
	OutputRows  int64
	MapTasks    int
	ReduceTasks int
}

type split struct {
	group int
	file  string
	block int
}

// Run executes the job to completion: all maps (with a full barrier),
// then all reduces.
func (e *Engine) Run(job *Job) (*JobResult, error) {
	if job.NumReduces < 1 {
		return nil, fmt.Errorf("mr: job %q needs NumReduces >= 1", job.Name)
	}
	jobID := int(e.jobSeq.Add(1))
	shuffleID := e.Shuffle.NewShuffleID()

	var splits []split
	for gi, g := range job.Inputs {
		for _, f := range g.Files {
			meta, err := e.FS.Stat(f)
			if err != nil {
				return nil, err
			}
			for b := range meta.Blocks {
				splits = append(splits, split{group: gi, file: f, block: b})
			}
		}
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("mr: job %q has no input splits", job.Name)
	}

	// ----- map phase (barrier at the end, as in Hadoop) -----
	locations := make(map[int]int, len(splits))
	mapResults := make([]<-chan cluster.Result, len(splits))
	for i, sp := range splits {
		i, sp := i, sp
		mapResults[i] = e.Cluster.Submit(&cluster.Task{Fn: func(w *cluster.Worker) (any, error) {
			return e.runMapTask(job, shuffleID, i, sp, w)
		}})
	}
	for i := range mapResults {
		res := <-mapResults[i]
		if res.Err != nil {
			res = e.retry(func(w *cluster.Worker) (any, error) {
				return e.runMapTask(job, shuffleID, i, splits[i], w)
			}, res)
			if res.Err != nil {
				return nil, fmt.Errorf("mr: map task %d of %q: %w", i, job.Name, res.Err)
			}
		}
		locations[i] = res.Worker
	}

	// ----- reduce phase -----
	outFiles := make([]string, job.NumReduces)
	var outputRows atomic.Int64
	redResults := make([]<-chan cluster.Result, job.NumReduces)
	for r := 0; r < job.NumReduces; r++ {
		r := r
		outFiles[r] = fmt.Sprintf("%s/part-%05d", job.Output, r)
		redResults[r] = e.Cluster.Submit(&cluster.Task{Fn: func(w *cluster.Worker) (any, error) {
			n, err := e.runReduceTask(job, shuffleID, r, outFiles[r], locations)
			if err == nil {
				outputRows.Add(n)
			}
			return nil, err
		}})
	}
	for r := range redResults {
		res := <-redResults[r]
		if res.Err != nil {
			return nil, fmt.Errorf("mr: reduce task %d of %q (job %d): %w", r, job.Name, jobID, res.Err)
		}
	}
	e.Shuffle.Unregister(shuffleID)
	return &JobResult{
		OutputFiles: outFiles,
		OutputRows:  outputRows.Load(),
		MapTasks:    len(splits),
		ReduceTasks: job.NumReduces,
	}, nil
}

func (e *Engine) retry(fn func(*cluster.Worker) (any, error), last cluster.Result) cluster.Result {
	for i := 0; i < e.retries; i++ {
		res := <-e.Cluster.Submit(&cluster.Task{Fn: fn, Excluded: []int{last.Worker}})
		if res.Err == nil {
			return res
		}
		last = res
	}
	return last
}

// runMapTask reads one split, applies the group's map function,
// partitions and sorts the output, applies the combiner, and spills
// each bucket to local disk.
func (e *Engine) runMapTask(job *Job, shuffleID, mapIdx int, sp split, w *cluster.Worker) (any, error) {
	rd, err := e.FS.OpenBlock(sp.file, sp.block)
	if err != nil {
		return nil, err
	}
	defer rd.Close()

	nB := job.NumReduces
	buckets := make([]map[string][]shuffle.Pair, nB)
	part := shuffle.HashPartitioner{N: nB}
	mapFn := job.Inputs[sp.group].Map
	emit := func(k any, v row.Row) {
		b := part.PartitionFor(k)
		if buckets[b] == nil {
			buckets[b] = make(map[string][]shuffle.Pair)
		}
		sk := sortKey(k)
		buckets[b][sk] = append(buckets[b][sk], shuffle.Pair{K: k, V: v})
	}
	for {
		r, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		mapFn(r, emit)
	}

	writer := e.Shuffle.NewWriter(shuffleID, mapIdx, nB, w)
	for b := range buckets {
		if buckets[b] == nil {
			continue
		}
		// Hadoop sorts map output by key before spilling.
		keys := make([]string, 0, len(buckets[b]))
		for k := range buckets[b] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, sk := range keys {
			pairs := buckets[b][sk]
			if job.Combine != nil {
				vals := make([]row.Row, len(pairs))
				for i, p := range pairs {
					vals[i] = p.V.(row.Row)
				}
				for _, v := range job.Combine(pairs[0].K, vals) {
					writer.Write(b, shuffle.Pair{K: pairs[0].K, V: v})
				}
				continue
			}
			for _, p := range pairs {
				writer.Write(b, p)
			}
		}
	}
	if _, err := writer.Commit(); err != nil {
		return nil, err
	}
	return nil, nil
}

// sortKey gives a total order over shuffle keys of mixed scalar type.
func sortKey(k any) string {
	return string(row.EncodeBinary(nil, row.Row{k}))
}

// runReduceTask fetches one bucket from every map output, merges by
// key, reduces, and writes the output part to the replicated DFS.
func (e *Engine) runReduceTask(job *Job, shuffleID, bucket int, outFile string, locations map[int]int) (int64, error) {
	pairs, err := e.Shuffle.Fetch(shuffleID, bucket, locations)
	if err != nil {
		return 0, err
	}
	groups := make(map[string][]shuffle.Pair)
	for _, p := range pairs {
		sk := sortKey(p.K)
		groups[sk] = append(groups[sk], p)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys) // merge-sorted reduce input order

	w, err := e.FS.Create(outFile, job.OutputFormat, job.OutputSchema)
	if err != nil {
		return 0, err
	}
	var n int64
	var werr error
	emit := func(r row.Row) {
		if werr == nil {
			werr = w.Write(r)
			n++
		}
	}
	for _, sk := range keys {
		g := groups[sk]
		vals := make([]row.Row, len(g))
		for i, p := range g {
			vals[i] = p.V.(row.Row)
		}
		job.Reduce(g[0].K, vals, emit)
		if werr != nil {
			return 0, werr
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return n, nil
}

// RunMapOnly executes a job with no shuffle or reduce phase: each map
// task writes its emitted values directly to a DFS part file (Hadoop's
// zero-reducer jobs, used for selections and final projections).
func (e *Engine) RunMapOnly(job *Job) (*JobResult, error) {
	var splits []split
	for gi, g := range job.Inputs {
		for _, f := range g.Files {
			meta, err := e.FS.Stat(f)
			if err != nil {
				return nil, err
			}
			for b := range meta.Blocks {
				splits = append(splits, split{group: gi, file: f, block: b})
			}
		}
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("mr: job %q has no input splits", job.Name)
	}
	outFiles := make([]string, len(splits))
	var outputRows atomic.Int64
	results := make([]<-chan cluster.Result, len(splits))
	for i, sp := range splits {
		i, sp := i, sp
		outFiles[i] = fmt.Sprintf("%s/part-%05d", job.Output, i)
		results[i] = e.Cluster.Submit(&cluster.Task{Fn: func(w *cluster.Worker) (any, error) {
			rd, err := e.FS.OpenBlock(sp.file, sp.block)
			if err != nil {
				return nil, err
			}
			defer rd.Close()
			wr, err := e.FS.Create(outFiles[i], job.OutputFormat, job.OutputSchema)
			if err != nil {
				return nil, err
			}
			var n int64
			var werr error
			emit := func(r row.Row) {
				if werr == nil {
					werr = wr.Write(r)
					n++
				}
			}
			mapFn := job.Inputs[sp.group].Map
			for {
				r, err := rd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				mapFn(r, func(_ any, v row.Row) { emit(v) })
				if werr != nil {
					return nil, werr
				}
			}
			if err := wr.Close(); err != nil {
				return nil, err
			}
			outputRows.Add(n)
			return nil, nil
		}})
	}
	for i := range results {
		if res := <-results[i]; res.Err != nil {
			return nil, fmt.Errorf("mr: map-only task %d of %q: %w", i, job.Name, res.Err)
		}
	}
	return &JobResult{
		OutputFiles: outFiles,
		OutputRows:  outputRows.Load(),
		MapTasks:    len(splits),
	}, nil
}

// ReadOutput reads every row of a job's output (driver-side).
func (e *Engine) ReadOutput(res *JobResult) ([]row.Row, error) {
	var out []row.Row
	for _, f := range res.OutputFiles {
		rows, err := e.FS.ReadAll(f)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// CleanupOutput removes a job's output files.
func (e *Engine) CleanupOutput(res *JobResult) {
	for _, f := range res.OutputFiles {
		e.FS.Delete(f)
	}
}
