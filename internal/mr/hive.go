package mr

import (
	"fmt"
	"sort"
	"sync/atomic"

	"shark/internal/dfs"
	"shark/internal/expr"
	"shark/internal/plan"
	"shark/internal/row"
)

// HiveOptions tunes the Hive-style executor.
type HiveOptions struct {
	// NumReduces fixes the reduce-task count ("hand-tuned Hive").
	// 0 uses the auto estimate, which — as §6.3 observes — is
	// frequently wrong.
	NumReduces int
	// PerReducerBytes drives the auto estimate (default 8 MiB, the
	// paper's 1 GB/reducer scaled by SimScale).
	PerReducerBytes int64
	// DisableExprCompile evaluates expressions by tree-walking, the
	// cost §5 attributes to Hive's interpreted evaluators. Default
	// true-like behaviour: Hive interprets, so the *default here is
	// interpretation*; set CompileExprs to give Hive the optimization.
	CompileExprs bool
}

// Hive compiles logical plans into chains of MapReduce jobs — the
// baseline system of every comparison in the paper's evaluation.
type Hive struct {
	Eng  *Engine
	Opts HiveOptions

	tmpSeq atomic.Int64
}

// NewHive creates the Hive-style executor.
func NewHive(eng *Engine, opts HiveOptions) *Hive {
	if opts.PerReducerBytes <= 0 {
		opts.PerReducerBytes = 8 << 20
	}
	return &Hive{Eng: eng, Opts: opts}
}

// Result is a materialized Hive query result.
type Result struct {
	Schema      row.Schema
	Rows        []row.Row
	Jobs        int
	MapTasks    int
	ReduceTasks int
}

// pipe is a not-yet-materialized map-side pipeline over DFS files.
type pipe struct {
	files     []string
	inSchema  row.Schema
	transform func(row.Row) []row.Row // nil = identity
	outSchema row.Schema
	temp      bool // files are intermediates owned by this query
}

func (p *pipe) fn(e *Hive) func(row.Row) []row.Row {
	if p.transform == nil {
		return func(r row.Row) []row.Row { return []row.Row{r} }
	}
	return p.transform
}

type runState struct {
	jobs        int
	mapTasks    int
	reduceTasks int
	cleanups    []string
}

// Run executes a logical plan as MapReduce jobs.
func (h *Hive) Run(p plan.Node) (*Result, error) {
	st := &runState{}
	defer func() {
		for _, f := range st.cleanups {
			h.Eng.FS.DeletePrefix(f)
		}
	}()

	limit := int64(-1)
	if l, ok := p.(*plan.Limit); ok {
		limit = l.N
		p = l.Child
	}
	var sortKeys []plan.SortKey
	if s, ok := p.(*plan.Sort); ok {
		sortKeys = s.Keys
		p = s.Child
	}
	schema := p.Schema()

	pp, err := h.compile(p, st)
	if err != nil {
		return nil, err
	}

	// Materialize the final pipe. A pending transform needs a final
	// map-only job (Hive writes query output to a table/directory).
	var rows []row.Row
	if pp.transform != nil || !pp.temp {
		out := h.tmpName()
		res, err := h.runMapOnly(pp, out, st)
		if err != nil {
			return nil, err
		}
		st.cleanups = append(st.cleanups, out)
		rows, err = h.Eng.ReadOutput(res)
		if err != nil {
			return nil, err
		}
	} else {
		for _, f := range pp.files {
			rs, err := h.Eng.FS.ReadAll(f)
			if err != nil {
				return nil, err
			}
			rows = append(rows, rs...)
		}
	}

	if sortKeys != nil {
		keyFns := make([]expr.EvalFn, len(sortKeys))
		for i, k := range sortKeys {
			keyFns[i] = h.evalFn(k.Expr)
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for k, fn := range keyFns {
				a, b := fn(rows[i]), fn(rows[j])
				c := compareNullable(a, b)
				if c == 0 {
					continue
				}
				if sortKeys[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if limit >= 0 && int64(len(rows)) > limit {
		rows = rows[:limit]
	}
	return &Result{
		Schema: schema, Rows: rows,
		Jobs: st.jobs, MapTasks: st.mapTasks, ReduceTasks: st.reduceTasks,
	}, nil
}

func compareNullable(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	return row.Compare(a, b)
}

func (h *Hive) evalFn(x expr.Expr) expr.EvalFn {
	if h.Opts.CompileExprs {
		return x.Compile()
	}
	return x.Eval
}

func (h *Hive) tmpName() string {
	return fmt.Sprintf("tmp/hive-%d", h.tmpSeq.Add(1))
}

func (h *Hive) numReduces(inputBytes int64) int {
	if h.Opts.NumReduces > 0 {
		return h.Opts.NumReduces
	}
	n := int(inputBytes / h.Opts.PerReducerBytes)
	if n < 1 {
		n = 1
	}
	if n > 99 {
		n = 99
	}
	return n
}

func (h *Hive) inputBytes(files []string) int64 {
	var n int64
	for _, f := range files {
		if m, err := h.Eng.FS.Stat(f); err == nil {
			n += m.TotalBytes()
		}
	}
	return n
}

// compile lowers a node to a pipe, running whole MR jobs for shuffle
// operators (aggregates and joins) along the way.
func (h *Hive) compile(n plan.Node, st *runState) (*pipe, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return h.compileScan(t)
	case *plan.Filter:
		child, err := h.compile(t.Child, st)
		if err != nil {
			return nil, err
		}
		pred := h.evalFn(t.Cond)
		inner := child.fn(h)
		child.transform = func(r row.Row) []row.Row {
			rows := inner(r)
			out := rows[:0]
			for _, rr := range rows {
				if row.Truth(pred(rr)) {
					out = append(out, rr)
				}
			}
			return out
		}
		return child, nil
	case *plan.Project:
		child, err := h.compile(t.Child, st)
		if err != nil {
			return nil, err
		}
		fns := make([]expr.EvalFn, len(t.Exprs))
		for i, x := range t.Exprs {
			fns[i] = h.evalFn(x)
		}
		inner := child.fn(h)
		child.transform = func(r row.Row) []row.Row {
			rows := inner(r)
			out := make([]row.Row, len(rows))
			for i, rr := range rows {
				proj := make(row.Row, len(fns))
				for j, f := range fns {
					proj[j] = f(rr)
				}
				out[i] = proj
			}
			return out
		}
		child.outSchema = t.Schema()
		return child, nil
	case *plan.Aggregate:
		return h.compileAggregate(t, st)
	case *plan.Join:
		return h.compileJoin(t, st)
	case plan.OneRow:
		return nil, fmt.Errorf("mr: SELECT without FROM is not supported by the Hive baseline")
	}
	return nil, fmt.Errorf("mr: hive cannot compile %T", n)
}

func (h *Hive) compileScan(s *plan.Scan) (*pipe, error) {
	if s.Table.File == "" {
		return nil, fmt.Errorf("mr: hive reads DFS tables only; %q is memstore-cached", s.Table.Name)
	}
	needed := append([]int(nil), s.NeededCols...)
	var pred expr.EvalFn
	if len(s.Filters) > 0 {
		c := s.Filters[0]
		for _, f := range s.Filters[1:] {
			c = &expr.And{L: c, R: f}
		}
		pred = h.evalFn(c)
	}
	return &pipe{
		files:    []string{s.Table.File},
		inSchema: s.Table.Schema,
		transform: func(r row.Row) []row.Row {
			out := make(row.Row, len(needed))
			for i, c := range needed {
				out[i] = r[c]
			}
			if pred != nil && !row.Truth(pred(out)) {
				return nil
			}
			return []row.Row{out}
		},
		outSchema: s.Schema(),
	}, nil
}

// runMapOnly materializes a pipe with a map-only job (no shuffle).
func (h *Hive) runMapOnly(p *pipe, output string, st *runState) (*JobResult, error) {
	fn := p.fn(h)
	job := &Job{
		Name: "map-only",
		Inputs: []InputGroup{{
			Files: p.files,
			Map: func(r row.Row, emit func(any, row.Row)) {
				for _, out := range fn(r) {
					emit(nil, out)
				}
			},
		}},
		Output:       output,
		OutputSchema: p.outSchema,
		OutputFormat: dfs.Binary,
	}
	res, err := h.Eng.RunMapOnly(job)
	if err != nil {
		return nil, err
	}
	st.jobs++
	st.mapTasks += res.MapTasks
	return res, nil
}
