package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"shark/internal/cluster"
	"shark/internal/dfs"
	"shark/internal/exec"
	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/shuffle"
)

// testEnv wires a small simulated cluster with a DFS and a session.
type testEnv struct {
	s  *Session
	fs *dfs.FS
}

func newEnv(t *testing.T, opts exec.Options) *testEnv {
	t.Helper()
	c := cluster.New(cluster.Config{Workers: 4, Slots: 2, Profile: cluster.SparkProfile()})
	t.Cleanup(c.Close)
	svc := shuffle.NewService(c, shuffle.Memory, t.TempDir())
	ctx := rdd.NewContext(c, svc, rdd.Options{})
	fs, err := dfs.New(dfs.Config{Dir: t.TempDir(), BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(ctx, fs, opts)
	return &testEnv{s: s, fs: fs}
}

var visitsSchema = row.Schema{
	{Name: "sourceIP", Type: row.TString},
	{Name: "destURL", Type: row.TString},
	{Name: "visitDate", Type: row.TDate},
	{Name: "adRevenue", Type: row.TFloat},
	{Name: "countryCode", Type: row.TString},
}

var rankingsSchema = row.Schema{
	{Name: "pageURL", Type: row.TString},
	{Name: "pageRank", Type: row.TInt},
	{Name: "avgDuration", Type: row.TInt},
}

func genVisits(n int) []row.Row {
	base, _ := row.ParseDate("2000-01-01")
	countries := []string{"US", "CA", "VN", "DE", "JP"}
	out := make([]row.Row, n)
	for i := 0; i < n; i++ {
		out[i] = row.Row{
			fmt.Sprintf("10.0.%d.%d", i%256, (i*7)%256),
			fmt.Sprintf("url-%d", i%200),
			base + int64(i%60),
			float64(i%100) * 0.5,
			countries[i%len(countries)],
		}
	}
	return out
}

func genRankings(n int) []row.Row {
	out := make([]row.Row, n)
	for i := 0; i < n; i++ {
		out[i] = row.Row{fmt.Sprintf("url-%d", i), int64((i * 37) % 1000), int64(i % 120)}
	}
	return out
}

// writeDFS stores rows as a DFS text file and registers the table.
func (e *testEnv) writeDFS(t *testing.T, name string, schema row.Schema, rows []row.Row) {
	t.Helper()
	w, err := e.fs.Create("data/"+name, dfs.Text, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.s.RegisterExternal(name, "data/"+name, schema); err != nil {
		t.Fatal(err)
	}
}

func (e *testEnv) mustExec(t *testing.T, sql string) *Result {
	t.Helper()
	res, err := e.s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func setupVisits(t *testing.T, e *testEnv, n int, cache bool) {
	t.Helper()
	e.writeDFS(t, "uservisits_ext", visitsSchema, genVisits(n))
	if cache {
		e.mustExec(t, `CREATE TABLE uservisits TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM uservisits_ext`)
	} else {
		e.mustExec(t, `CREATE TABLE uservisits AS SELECT * FROM uservisits_ext`)
	}
}

func TestSelectionQuery(t *testing.T) {
	e := newEnv(t, exec.Options{})
	e.writeDFS(t, "rankings", rankingsSchema, genRankings(2000))
	res := e.mustExec(t, "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 900")
	want := 0
	for _, r := range genRankings(2000) {
		if r[1].(int64) > 900 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if r[1].(int64) <= 900 {
			t.Fatalf("filter violated: %v", r)
		}
	}
}

func TestAggregationMatchesReference(t *testing.T) {
	for _, cached := range []bool{false, true} {
		t.Run(fmt.Sprintf("cached=%v", cached), func(t *testing.T) {
			e := newEnv(t, exec.Options{})
			setupVisits(t, e, 3000, cached)
			res := e.mustExec(t, `SELECT countryCode, COUNT(*) AS c, SUM(adRevenue) AS rev,
				AVG(adRevenue) AS avg_rev, MIN(adRevenue), MAX(adRevenue)
				FROM uservisits GROUP BY countryCode ORDER BY countryCode`)

			// reference
			type agg struct {
				n        int64
				sum      float64
				min, max float64
			}
			ref := map[string]*agg{}
			for _, r := range genVisits(3000) {
				c := r[4].(string)
				v := r[3].(float64)
				a := ref[c]
				if a == nil {
					a = &agg{min: math.Inf(1), max: math.Inf(-1)}
					ref[c] = a
				}
				a.n++
				a.sum += v
				a.min = math.Min(a.min, v)
				a.max = math.Max(a.max, v)
			}
			if len(res.Rows) != len(ref) {
				t.Fatalf("groups = %d, want %d", len(res.Rows), len(ref))
			}
			for _, r := range res.Rows {
				c := r[0].(string)
				a := ref[c]
				if r[1].(int64) != a.n {
					t.Errorf("%s count %d != %d", c, r[1], a.n)
				}
				if math.Abs(r[2].(float64)-a.sum) > 1e-6 {
					t.Errorf("%s sum %v != %v", c, r[2], a.sum)
				}
				if math.Abs(r[3].(float64)-a.sum/float64(a.n)) > 1e-9 {
					t.Errorf("%s avg %v", c, r[3])
				}
				if r[4].(float64) != a.min || r[5].(float64) != a.max {
					t.Errorf("%s min/max %v/%v != %v/%v", c, r[4], r[5], a.min, a.max)
				}
			}
		})
	}
}

func TestSubstrGroupBy(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 2000, true)
	res := e.mustExec(t, `SELECT SUBSTR(sourceIP, 1, 7), SUM(adRevenue) FROM uservisits
		GROUP BY SUBSTR(sourceIP, 1, 7)`)
	ref := map[string]float64{}
	for _, r := range genVisits(2000) {
		k := r[0].(string)
		if len(k) > 7 {
			k = k[:7]
		}
		ref[k] += r[3].(float64)
	}
	if len(res.Rows) != len(ref) {
		t.Fatalf("groups = %d want %d", len(res.Rows), len(ref))
	}
	for _, r := range res.Rows {
		if math.Abs(r[1].(float64)-ref[r[0].(string)]) > 1e-6 {
			t.Errorf("group %v: %v != %v", r[0], r[1], ref[r[0].(string)])
		}
	}
}

func TestCountAndCountDistinct(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	res := e.mustExec(t, `SELECT COUNT(*), COUNT(DISTINCT destURL), COUNT(DISTINCT countryCode) FROM uservisits`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].(int64) != 1000 || r[1].(int64) != 200 || r[2].(int64) != 5 {
		t.Errorf("counts = %v", r)
	}
}

func TestJoinAllStrategiesAgree(t *testing.T) {
	// The Pavlo join query shape under each strategy mode must agree
	// with the reference.
	ref := referenceJoinRevenue(600, 3000)
	for _, mode := range []exec.StrategyMode{exec.StrategyStatic, exec.StrategyAdaptive, exec.StrategyStaticAdaptive} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, exec.Options{JoinStrategy: mode, BroadcastThreshold: 16 << 10})
			e.writeDFS(t, "rankings_ext", rankingsSchema, genRankings(600))
			e.writeDFS(t, "uservisits_ext", visitsSchema, genVisits(3000))
			e.mustExec(t, `CREATE TABLE rankings TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM rankings_ext`)
			e.mustExec(t, `CREATE TABLE uservisits TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM uservisits_ext`)
			res := e.mustExec(t, `SELECT UV.sourceIP, AVG(R.pageRank) AS pr, SUM(UV.adRevenue) AS rev
				FROM rankings AS R, uservisits AS UV
				WHERE R.pageURL = UV.destURL
				GROUP BY UV.sourceIP`)
			if len(res.Rows) != len(ref) {
				t.Fatalf("groups = %d, want %d", len(res.Rows), len(ref))
			}
			for _, r := range res.Rows {
				want := ref[r[0].(string)]
				if math.Abs(r[2].(float64)-want) > 1e-6 {
					t.Errorf("rev(%v) = %v, want %v", r[0], r[2], want)
				}
			}
			if len(res.Stats.JoinStrategies) == 0 {
				t.Error("no join strategy recorded")
			}
		})
	}
}

func referenceJoinRevenue(nRank, nVisit int) map[string]float64 {
	ranks := map[string]int64{}
	for _, r := range genRankings(nRank) {
		ranks[r[0].(string)] = r[1].(int64)
	}
	out := map[string]float64{}
	for _, v := range genVisits(nVisit) {
		if _, ok := ranks[v[1].(string)]; ok {
			out[v[0].(string)] += v[3].(float64)
		}
	}
	return out
}

func TestCopartitionedJoin(t *testing.T) {
	e := newEnv(t, exec.Options{})
	e.writeDFS(t, "rankings_ext", rankingsSchema, genRankings(500))
	e.writeDFS(t, "uservisits_ext", visitsSchema, genVisits(2500))
	e.mustExec(t, `CREATE TABLE r_mem TBLPROPERTIES ("shark.cache"="true") AS
		SELECT * FROM rankings_ext DISTRIBUTE BY pageURL`)
	e.mustExec(t, `CREATE TABLE v_mem TBLPROPERTIES ("shark.cache"="true", "copartition"="r_mem") AS
		SELECT * FROM uservisits_ext DISTRIBUTE BY destURL`)
	res := e.mustExec(t, `SELECT r_mem.pageURL, v_mem.adRevenue FROM r_mem
		JOIN v_mem ON r_mem.pageURL = v_mem.destURL`)
	if len(res.Stats.JoinStrategies) != 1 || !strings.HasPrefix(res.Stats.JoinStrategies[0], "copartitioned") {
		t.Fatalf("strategies = %v, want copartitioned", res.Stats.JoinStrategies)
	}
	// reference count
	ranks := map[string]bool{}
	for _, r := range genRankings(500) {
		ranks[r[0].(string)] = true
	}
	want := 0
	for _, v := range genVisits(2500) {
		if ranks[v[1].(string)] {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("join rows = %d, want %d", len(res.Rows), want)
	}
}

func TestMapPruningReducesScan(t *testing.T) {
	e := newEnv(t, exec.Options{})
	// clustered data: visitDate increases with row index
	base, _ := row.ParseDate("2000-01-01")
	var rows []row.Row
	for i := 0; i < 4000; i++ {
		rows = append(rows, row.Row{
			fmt.Sprintf("ip-%d", i), fmt.Sprintf("url-%d", i%50),
			base + int64(i/100), float64(i % 10), "US",
		})
	}
	e.writeDFS(t, "logs_ext", visitsSchema, rows)
	e.mustExec(t, `CREATE TABLE logs TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM logs_ext`)
	tbl, err := e.s.Cat.Get("logs")
	if err != nil {
		t.Fatal(err)
	}
	total := tbl.Mem.NumPartitions()
	if total < 4 {
		t.Fatalf("table has only %d partitions; pruning test needs more", total)
	}
	res := e.mustExec(t, `SELECT COUNT(*) FROM logs WHERE visitDate BETWEEN Date('2000-01-05') AND Date('2000-01-06')`)
	if res.Rows[0][0].(int64) != 200 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if res.Stats.PrunedPartitions == 0 {
		t.Error("no partitions pruned despite clustered predicate")
	}
	if res.Stats.ScannedPartitions >= total {
		t.Errorf("scanned %d of %d partitions", res.Stats.ScannedPartitions, total)
	}

	// ablation: pruning disabled scans everything
	e2 := newEnv(t, exec.Options{DisablePruning: true})
	e2.writeDFS(t, "logs_ext", visitsSchema, rows)
	e2.mustExec(t, `CREATE TABLE logs TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM logs_ext`)
	tbl2, err := e2.s.Cat.Get("logs")
	if err != nil {
		t.Fatal(err)
	}
	res2 := e2.mustExec(t, `SELECT COUNT(*) FROM logs WHERE visitDate BETWEEN Date('2000-01-05') AND Date('2000-01-06')`)
	if res2.Stats.ScannedPartitions != tbl2.Mem.NumPartitions() {
		t.Errorf("ablation should scan all %d: %d", tbl2.Mem.NumPartitions(), res2.Stats.ScannedPartitions)
	}
	if res2.Rows[0][0].(int64) != 200 {
		t.Errorf("ablation count = %v", res2.Rows[0][0])
	}
}

func TestOrderByLimit(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	res := e.mustExec(t, `SELECT countryCode, SUM(adRevenue) AS rev FROM uservisits
		GROUP BY countryCode ORDER BY rev DESC LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].(float64) > res.Rows[i-1][1].(float64) {
			t.Errorf("not descending: %v", res.Rows)
		}
	}
}

func TestHavingFilter(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	res := e.mustExec(t, `SELECT destURL, COUNT(*) AS c FROM uservisits
		GROUP BY destURL HAVING COUNT(*) > 5`)
	for _, r := range res.Rows {
		if r[1].(int64) <= 5 {
			t.Errorf("HAVING violated: %v", r)
		}
	}
}

func TestUDFInQuery(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 500, true)
	err := e.s.RegisterUDF("IS_INTERESTING", row.TBool, 1, 1, func(args []any) any {
		s, _ := args[0].(string)
		return strings.HasSuffix(s, "7")
	})
	if err != nil {
		t.Fatal(err)
	}
	res := e.mustExec(t, `SELECT COUNT(*) FROM uservisits WHERE IS_INTERESTING(destURL)`)
	want := int64(0)
	for _, r := range genVisits(500) {
		if strings.HasSuffix(r[1].(string), "7") {
			want++
		}
	}
	if res.Rows[0][0].(int64) != want {
		t.Errorf("udf count = %v, want %d", res.Rows[0][0], want)
	}
}

func TestFig8UDFJoinAdaptive(t *testing.T) {
	// The §6.3.2 shape: join with a selective UDF filter the static
	// optimizer cannot see. static+adaptive must choose a map join.
	e := newEnv(t, exec.Options{JoinStrategy: exec.StrategyStaticAdaptive, BroadcastThreshold: 64 << 10})
	e.writeDFS(t, "lineitem_ext", rankingsSchema, genRankings(5000))
	suppliers := make([]row.Row, 2000)
	for i := range suppliers {
		suppliers[i] = row.Row{fmt.Sprintf("url-%d", i%1000), int64(i), int64(i)}
	}
	e.writeDFS(t, "supplier_ext", rankingsSchema, suppliers)
	e.mustExec(t, `CREATE TABLE lineitem TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM lineitem_ext`)
	e.mustExec(t, `CREATE TABLE supplier TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM supplier_ext`)
	e.s.RegisterUDF("SOME_UDF", row.TBool, 1, 1, func(args []any) any {
		v, _ := args[0].(int64)
		return v%100 == 0 // 1% selectivity, opaque to the optimizer
	})
	res := e.mustExec(t, `SELECT lineitem.pageURL, supplier.pageRank FROM lineitem
		JOIN supplier ON lineitem.pageURL = supplier.pageURL
		WHERE SOME_UDF(supplier.avgDuration)`)
	if len(res.Stats.JoinStrategies) != 1 || !strings.Contains(res.Stats.JoinStrategies[0], "map-join") {
		t.Errorf("strategies = %v, want adaptive map-join", res.Stats.JoinStrategies)
	}
	// reference
	type sup struct{ url string }
	want := 0
	for i := range suppliers {
		if suppliers[i][2].(int64)%100 == 0 {
			u := suppliers[i][0].(string)
			for _, l := range genRankings(5000) {
				if l[0].(string) == u {
					want++
				}
			}
		}
	}
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestFaultToleranceMidQuery(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 4000, true)
	before := e.mustExec(t, `SELECT countryCode, COUNT(*) FROM uservisits GROUP BY countryCode ORDER BY countryCode`)
	e.s.Ctx.Cluster.Kill(1)
	e.s.Ctx.NotifyWorkerLost(1)
	after := e.mustExec(t, `SELECT countryCode, COUNT(*) FROM uservisits GROUP BY countryCode ORDER BY countryCode`)
	if len(before.Rows) != len(after.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(before.Rows), len(after.Rows))
	}
	for i := range before.Rows {
		if before.Rows[i][1].(int64) != after.Rows[i][1].(int64) {
			t.Errorf("group %v: %v != %v", before.Rows[i][0], after.Rows[i][1], before.Rows[i][1])
		}
	}
}

func TestSubqueryEndToEnd(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	res := e.mustExec(t, `SELECT country, c FROM
		(SELECT countryCode AS country, COUNT(*) AS c FROM uservisits GROUP BY countryCode) agg
		WHERE c > 100 ORDER BY country`)
	if len(res.Rows) != 5 { // 1000/5 = 200 per country, all > 100
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestExplainStatement(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 100, false)
	res := e.mustExec(t, `EXPLAIN SELECT countryCode, COUNT(*) FROM uservisits GROUP BY countryCode`)
	text := ""
	for _, r := range res.Rows {
		text += r[0].(string) + "\n"
	}
	for _, want := range []string{"Project", "Aggregate", "Scan"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %s:\n%s", want, text)
		}
	}
}

func TestDropTable(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 100, true)
	e.mustExec(t, `DROP TABLE uservisits`)
	if _, err := e.s.Exec(`SELECT COUNT(*) FROM uservisits`); err == nil {
		t.Error("query after drop should fail")
	}
	e.mustExec(t, `DROP TABLE IF EXISTS uservisits`) // idempotent
}

func TestSql2RddBridge(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	tr, err := e.s.Query(`SELECT adRevenue, countryCode FROM uservisits WHERE adRevenue > 10.0`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema[0].Name != "adRevenue" {
		t.Errorf("schema: %v", tr.Schema)
	}
	n, err := tr.RDD.Count()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, r := range genVisits(1000) {
		if r[3].(float64) > 10.0 {
			want++
		}
	}
	if n != want {
		t.Errorf("sql2rdd count = %d, want %d", n, want)
	}
	// and it composes with further RDD ops (the §4 pipeline)
	sum, err := tr.RDD.Map(func(v any) any { return v.(row.Row)[0] }).
		Reduce(func(a, b any) any { return a.(float64) + b.(float64) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.(float64) <= 0 {
		t.Error("pipeline sum should be positive")
	}
}

func TestInterpreterModeAgrees(t *testing.T) {
	q := `SELECT countryCode, COUNT(*) AS c FROM uservisits
		WHERE adRevenue > 5.0 GROUP BY countryCode ORDER BY countryCode`
	run := func(disable bool) []row.Row {
		e := newEnv(t, exec.Options{DisableExprCompile: disable})
		setupVisits(t, e, 1500, true)
		return e.mustExec(t, q).Rows
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Errorf("row %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCTASToDFS(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 500, false)
	e.mustExec(t, `CREATE TABLE us_only AS SELECT * FROM uservisits WHERE countryCode = 'US'`)
	res := e.mustExec(t, `SELECT COUNT(*) FROM us_only`)
	if res.Rows[0][0].(int64) != 100 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestLimitWithoutSort(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	res := e.mustExec(t, `SELECT sourceIP FROM uservisits LIMIT 10`)
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestCaseExpression(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	res := e.mustExec(t, `SELECT CASE WHEN adRevenue > 25.0 THEN 'high' ELSE 'low' END AS seg, COUNT(*)
		FROM uservisits GROUP BY CASE WHEN adRevenue > 25.0 THEN 'high' ELSE 'low' END ORDER BY seg`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	var high, low int64
	for _, r := range genVisits(1000) {
		if r[3].(float64) > 25.0 {
			high++
		} else {
			low++
		}
	}
	if res.Rows[0][1].(int64) != high || res.Rows[1][1].(int64) != low {
		t.Errorf("case counts: %v (want %d/%d)", res.Rows, high, low)
	}
}

func TestReducerCoalescingRecorded(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 2000, true)
	res := e.mustExec(t, `SELECT destURL, COUNT(*) FROM uservisits GROUP BY destURL`)
	if len(res.Stats.ReducerCounts) == 0 {
		t.Fatal("no reducer count recorded")
	}
	fine := e.s.Ctx.Cluster.TotalSlots() * e.s.Engine.Options().FineBucketsPerSlot
	if res.Stats.ReducerCounts[0] > fine {
		t.Errorf("reducers %d > fine buckets %d", res.Stats.ReducerCounts[0], fine)
	}
	sort.Ints(res.Stats.ReducerCounts)
}
