package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"shark/internal/plan"
	"shark/internal/sqlparse"
)

// PlanCache memoizes the SQL front-end for the high-QPS repeated-query
// path: normalized statement text maps to its parsed AST, and for
// parameterless SELECTs also to the analyzed plan, so a dashboard
// re-running the same statements skips lex/parse (and usually
// analyze/optimize) entirely.
//
// Keys are built by Session from (normalized SQL with parameter
// slots, engine-options fingerprint, catalog version) — see
// Session.planKey. Because the catalog version changes on every DDL,
// invalidation is free: stale entries simply stop being looked up and
// age out of the LRU. A cache may be shared by every session attached
// to a shared catalog; all methods are concurrency-safe, and cached
// ASTs/plans are never mutated (binding copies, analysis and
// compilation read).
type PlanCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent

	hits   atomic.Int64
	misses atomic.Int64
}

type planEntry struct {
	key       string
	stmt      sqlparse.Statement
	numParams int
	plan      plan.Node // non-nil only for parameterless SELECTs
}

// DefaultPlanCacheSize bounds a session's plan cache when the caller
// does not size it explicitly.
const DefaultPlanCacheSize = 256

// NewPlanCache creates a plan cache holding at most max statements
// (<=0 uses DefaultPlanCacheSize).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = DefaultPlanCacheSize
	}
	return &PlanCache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// lookup returns the cached entry for key, promoting it.
func (c *PlanCache) lookup(key string) (*planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*planEntry), true
}

// insert stores an entry, evicting the least-recently-used statement
// at capacity. An existing entry for the key is only upgraded (a
// racing insert without a plan never erases one with it).
func (c *PlanCache) insert(e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		old := el.Value.(*planEntry)
		if old.plan == nil && e.plan != nil {
			el.Value = e
		}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*planEntry).key)
	}
}

// Len reports how many statements are cached.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats reports cumulative hits and misses.
func (c *PlanCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// optsFingerprint renders the session's effective engine options into
// the cache key, so sessions sharing a PlanCache but running with
// different knobs (join strategy, PDE toggles, ...) never share plans.
func (s *Session) optsFingerprint() string {
	s.mu.Lock()
	if s.optsFP == "" {
		s.optsFP = fmt.Sprintf("%+v", s.Engine.Options())
	}
	fp := s.optsFP
	s.mu.Unlock()
	return fp
}

// planKey builds the cache key for a statement: normalized text
// (parameter slots intact), engine options, catalog version. Any DDL
// bumps the version, so every session keying against the shared
// catalog switches to fresh entries immediately.
func (s *Session) planKey(norm string) string {
	return fmt.Sprintf("%s\x00%s\x00%d", norm, s.optsFingerprint(), s.Cat.Version())
}
