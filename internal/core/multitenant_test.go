package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shark/internal/catalog"
	"shark/internal/cluster"
	"shark/internal/dfs"
	"shark/internal/exec"
	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/shuffle"
)

// sharedWorld is one simulated cluster that several sessions attach
// to, the multi-tenant shape of the redesigned API.
type sharedWorld struct {
	cl  *cluster.Cluster
	ctx *rdd.Context
	fs  *dfs.FS
	cat *catalog.Catalog // shared-catalog sessions attach here
}

func newSharedWorld(t *testing.T) *sharedWorld {
	t.Helper()
	cl := cluster.New(cluster.Config{Workers: 4, Slots: 2, Profile: cluster.SparkProfile()})
	t.Cleanup(cl.Close)
	svc := shuffle.NewService(cl, shuffle.Memory, t.TempDir())
	fs, err := dfs.New(dfs.Config{Dir: t.TempDir(), BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return &sharedWorld{cl: cl, ctx: rdd.NewContext(cl, svc, rdd.Options{}), fs: fs, cat: catalog.New()}
}

// session attaches a new session. shared selects the world's shared
// catalog; otherwise the session gets a private one.
func (w *sharedWorld) session(name string, shared bool) *Session {
	cat := catalog.New()
	if shared {
		cat = w.cat
	}
	return NewSessionNamed(w.ctx, w.fs, cat, name, exec.Options{})
}

var tenantSchema = row.Schema{
	{Name: "k", Type: row.TInt},
	{Name: "grp", Type: row.TString},
	{Name: "v", Type: row.TFloat},
}

// loadTenantTable writes n rows (values offset by base) into the DFS
// under a session-unique path and caches them as name_mem.
func loadTenantTable(t *testing.T, s *Session, name string, n int, base float64) {
	t.Helper()
	file := "data/" + s.Tag + "/" + name
	w, err := s.FS.Create(file, dfs.Text, tenantSchema)
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		if err := w.Write(row.Row{int64(i), groups[i%len(groups)], base + float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterExternal(name, file, tenantSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(fmt.Sprintf(
		`CREATE TABLE %s_mem TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM %s`, name, name)); err != nil {
		t.Fatal(err)
	}
}

// TestTwoSessionsConcurrentIsolatedResults: two private-catalog
// sessions on one cluster run the same table name with different data
// concurrently and each sees exactly its own answers.
func TestTwoSessionsConcurrentIsolatedResults(t *testing.T) {
	w := newSharedWorld(t)
	s1 := w.session("alice", false)
	s2 := w.session("bob", false)
	defer s1.Close()
	defer s2.Close()
	loadTenantTable(t, s1, "events", 2000, 0)
	loadTenantTable(t, s2, "events", 1000, 1_000_000)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	runMany := func(s *Session, wantRows int64, wantMin float64) {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			res, err := s.Exec(`SELECT COUNT(*), MIN(v) FROM events_mem`)
			if err != nil {
				errs <- err
				return
			}
			if got := res.Rows[0][0].(int64); got != wantRows {
				errs <- fmt.Errorf("%s: count = %d, want %d", s.Tag, got, wantRows)
				return
			}
			if got := res.Rows[0][1].(float64); got != wantMin {
				errs <- fmt.Errorf("%s: min = %v, want %v", s.Tag, got, wantMin)
				return
			}
		}
	}
	wg.Add(2)
	go runMany(s1, 2000, 0)
	go runMany(s2, 1000, 1_000_000)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Per-session attribution: both sessions did work.
	if st := s1.Stats(); st.Jobs == 0 || st.Tasks == 0 {
		t.Errorf("alice stats empty: %+v", st)
	}
	if st := s2.Stats(); st.Jobs == 0 || st.Tasks == 0 {
		t.Errorf("bob stats empty: %+v", st)
	}
}

// TestSharedCatalogVisibility: sessions attached to the shared catalog
// see each other's tables; a private-catalog session does not.
func TestSharedCatalogVisibility(t *testing.T) {
	w := newSharedWorld(t)
	s1 := w.session("writer", true)
	s2 := w.session("reader", true)
	s3 := w.session("outsider", false)
	loadTenantTable(t, s1, "facts", 400, 0)

	res, err := s2.Exec(`SELECT COUNT(*) FROM facts_mem`)
	if err != nil {
		t.Fatalf("shared-catalog reader: %v", err)
	}
	if res.Rows[0][0].(int64) != 400 {
		t.Errorf("reader count = %v", res.Rows[0][0])
	}
	if _, err := s3.Exec(`SELECT COUNT(*) FROM facts_mem`); err == nil {
		t.Error("private-catalog session saw another session's table")
	}
}

// TestExecContextCancelThenReuse: cancelling a statement mid-flight
// returns context.Canceled and the same session then answers the next
// query with full, correct results.
func TestExecContextCancelThenReuse(t *testing.T) {
	w := newSharedWorld(t)
	s := w.session("c", false)
	defer s.Close()
	loadTenantTable(t, s, "events", 4000, 0)

	// Cancel quickly; whether parsing/planning got far enough for the
	// cancellation to land mid-query, the session must survive.
	gctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Microsecond)
		cancel()
	}()
	_, err := s.ExecContext(gctx, `SELECT grp, SUM(v), COUNT(*) FROM events_mem GROUP BY grp`)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	if err == nil {
		t.Log("query finished before the cancel landed; retrying with a pre-cancelled context")
		pre, preCancel := context.WithCancel(context.Background())
		preCancel()
		if _, err := s.ExecContext(pre, `SELECT COUNT(*) FROM events_mem`); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
		}
	}

	// No queued tasks may linger and the next statement is correct.
	res, err := s.Exec(`SELECT COUNT(*), SUM(v) FROM events_mem`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 4000 {
		t.Errorf("post-cancel count = %d, want 4000", got)
	}
	var want float64
	for i := 0; i < 4000; i++ {
		want += float64(i)
	}
	if got := res.Rows[0][1].(float64); got != want {
		t.Errorf("post-cancel sum = %v, want %v", got, want)
	}
}

// TestSessionCloseReleasesOnlyOwnState: closing one session drops its
// cached tables (blocks leave worker memory) without touching the
// other session or shutting the shared cluster down.
func TestSessionCloseReleasesOnlyOwnState(t *testing.T) {
	w := newSharedWorld(t)
	s1 := w.session("doomed", false)
	s2 := w.session("survivor", false)
	loadTenantTable(t, s1, "mine", 800, 0)
	loadTenantTable(t, s2, "yours", 800, 0)

	blocksWithPrefix := func(prefix string) int {
		n := 0
		for i := 0; i < w.cl.NumWorkers(); i++ {
			for _, k := range w.cl.Worker(i).Store().Keys() {
				if strings.HasPrefix(k, prefix) {
					n++
				}
			}
		}
		return n
	}
	if blocksWithPrefix("rdd/") == 0 {
		t.Fatal("no cached blocks before close")
	}
	before := blocksWithPrefix("rdd/")

	s1.Close()
	after := blocksWithPrefix("rdd/")
	if after >= before {
		t.Errorf("close evicted nothing: %d blocks before, %d after", before, after)
	}
	if s1.Cat.Exists("mine_mem") {
		t.Error("closed session's table still registered")
	}
	// The survivor still works on the shared cluster.
	res, err := s2.Exec(`SELECT COUNT(*) FROM yours_mem`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 800 {
		t.Errorf("survivor count = %v", res.Rows[0][0])
	}
	// Closing again is a no-op.
	s1.Close()
}

// TestCloseSkipsReCreatedTableOnSharedCatalog: after session A's table
// is dropped and re-created by session B under the same name on a
// shared catalog, A.Close must not drop B's live table.
func TestCloseSkipsReCreatedTableOnSharedCatalog(t *testing.T) {
	w := newSharedWorld(t)
	a := w.session("a", true)
	b := w.session("b", true)
	loadTenantTable(t, a, "shared", 200, 0)

	// B drops A's cached table and re-creates the name as its own.
	if _, err := b.Exec(`DROP TABLE shared_mem`); err != nil {
		t.Fatal(err)
	}
	loadTenantTable(t, b, "shared2", 300, 0) // distinct DFS file for B
	if _, err := b.Exec(`CREATE TABLE shared_mem TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM shared2`); err != nil {
		t.Fatal(err)
	}

	a.Close()
	res, err := b.Exec(`SELECT COUNT(*) FROM shared_mem`)
	if err != nil {
		t.Fatalf("b's re-created table vanished after a.Close: %v", err)
	}
	if res.Rows[0][0].(int64) != 300 {
		t.Errorf("count = %v, want 300", res.Rows[0][0])
	}
}

// TestCooperativeCancelMidPartitionScan: a deliberately slow
// single-partition scan (a per-row UDF that sleeps) must abort
// mid-partition within a bounded wall-clock when its context is
// cancelled — not at the partition boundary seconds later — and leave
// the session fully reusable.
func TestCooperativeCancelMidPartitionScan(t *testing.T) {
	w := newSharedWorld(t)
	s := w.session("slowpoke", false)
	defer s.Close()
	s.DefaultCacheParts = 1 // one partition: boundary-only cancel would wait out the whole scan
	const rows = 40000
	loadTenantTable(t, s, "big", rows, 0)
	err := s.RegisterUDF("SLOWROW", row.TBool, 1, 1, func(args []any) any {
		time.Sleep(100 * time.Microsecond) // full scan ≈ 4s
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	gctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.ExecContext(gctx, `SELECT COUNT(*) FROM big_mem WHERE SLOWROW(k)`)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The single partition needs ~4s to finish; the cooperative abort
	// must land far earlier. 1.5s leaves slack for slow CI under -race.
	if elapsed > 1500*time.Millisecond {
		t.Errorf("cancel took %v; the scan ran its partition to the boundary", elapsed)
	}
	// The abort is visible in the session's stats once the task body
	// lands (it may trail the master's return by one row checkpoint).
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().CancelledMidPartition == 0 {
		if time.Now().After(deadline) {
			t.Fatal("CancelledMidPartition stayed 0")
		}
		time.Sleep(time.Millisecond)
	}
	// Session stays usable and correct.
	res, err := s.Exec(`SELECT COUNT(*) FROM big_mem`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != rows {
		t.Errorf("post-abort count = %d, want %d", got, rows)
	}
}

// gateUDF installs a blocking UDF over a one-row table: the single
// evaluation per statement signals entered and holds until the gate
// channel yields. Used to park statements mid-execution
// deterministically and count how many execute concurrently.
func gateUDF(t *testing.T, s *Session, entered *atomic.Int64, gate chan struct{}) {
	t.Helper()
	err := s.RegisterUDF("GATE", row.TBool, 1, 1, func(args []any) any {
		entered.Add(1)
		<-gate
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionControlSerializesStatements: a session capped at
// MaxConcurrentJobs=1 issuing three concurrent ExecContext calls must
// run them strictly one at a time (FIFO admission), recording two
// admission waits and three admitted jobs.
func TestAdmissionControlSerializesStatements(t *testing.T) {
	w := newSharedWorld(t)
	s := w.session("capped", false)
	defer s.Close()
	s.DefaultCacheParts = 1
	loadTenantTable(t, s, "small", 1, 0)
	var entered atomic.Int64
	gate := make(chan struct{})
	gateUDF(t, s, &entered, gate)
	s.MaxConcurrentJobs = 1 // after setup: the loads above should not queue

	const stmts = 3
	errs := make(chan error, stmts)
	var wg sync.WaitGroup
	for i := 0; i < stmts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.ExecContext(context.Background(), `SELECT COUNT(*) FROM small_mem WHERE GATE(k)`)
			errs <- err
		}()
	}
	// Exactly one statement may reach execution while the gate holds.
	deadline := time.Now().Add(2 * time.Second)
	for entered.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no statement ever started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // give stragglers time to (incorrectly) start
	if got := entered.Load(); got != 1 {
		t.Fatalf("%d statements executing concurrently under MaxConcurrentJobs=1", got)
	}
	if got := s.Stats().AdmissionWaits; got != 2 {
		t.Errorf("AdmissionWaits = %d, want 2", got)
	}
	// Release everyone: each statement passes the gate once admitted.
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := entered.Load(); got != stmts {
		t.Errorf("entered = %d, want %d", got, stmts)
	}
	if got := s.Stats().AdmittedJobs; got != stmts {
		t.Errorf("AdmittedJobs = %d, want %d", got, stmts)
	}
}

// TestAdmissionCancelWhileQueuedNeverDispatches: cancelling a
// statement that is still waiting for admission releases it
// immediately — it never becomes a job and never dispatches a task.
func TestAdmissionCancelWhileQueuedNeverDispatches(t *testing.T) {
	w := newSharedWorld(t)
	s := w.session("queued", false)
	defer s.Close()
	s.DefaultCacheParts = 1
	loadTenantTable(t, s, "small", 1, 0)
	var entered atomic.Int64
	gate := make(chan struct{})
	gateUDF(t, s, &entered, gate)
	s.MaxConcurrentJobs = 1

	first := make(chan error, 1)
	go func() {
		_, err := s.ExecContext(context.Background(), `SELECT COUNT(*) FROM small_mem WHERE GATE(k)`)
		first <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for entered.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first statement never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Second statement queues for admission; cancel it there.
	gctx, cancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, err := s.ExecContext(gctx, `SELECT COUNT(*) FROM small_mem`)
		second <- err
	}()
	for s.Stats().AdmissionWaits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second statement never queued for admission")
		}
		time.Sleep(time.Millisecond)
	}
	launchedBefore := w.cl.TasksLaunched()
	jobsBefore := s.Stats().Jobs
	cancel()
	select {
	case err := <-second:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled queued statement err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled queued statement never returned")
	}
	// No job was created and no task was dispatched for it (the first
	// statement is parked inside the gate, so the counters are quiet).
	if got := w.cl.TasksLaunched(); got != launchedBefore {
		t.Errorf("TasksLaunched went %d -> %d during a queued-statement cancel", launchedBefore, got)
	}
	if got := s.Stats().Jobs; got != jobsBefore {
		t.Errorf("Jobs went %d -> %d: the cancelled wait produced a job", jobsBefore, got)
	}

	close(gate)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	// The slot freed by the finished first statement admits new work.
	res, err := s.Exec(`SELECT COUNT(*) FROM small_mem`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 1 {
		t.Errorf("post-cancel count = %d, want 1", got)
	}
}

// TestStatementShuffleOutputsReleased: a join-heavy statement pins
// shuffle map outputs in worker memory while it runs; once it
// completes with no live RDD over those shuffles, the pinned bytes
// must return to baseline instead of outliving the statement (the
// PR 4 storage follow-up).
func TestStatementShuffleOutputsReleased(t *testing.T) {
	w := newSharedWorld(t)
	// Broadcast threshold 1 byte forces a real shuffle join.
	s := NewSessionNamed(w.ctx, w.fs, catalog.New(), "joiner", exec.Options{BroadcastThreshold: 1})
	defer s.Close()
	loadTenantTable(t, s, "lhs", 600, 0)
	loadTenantTable(t, s, "rhs", 400, 0)

	pinned := func() int64 {
		var n int64
		for i := 0; i < w.cl.NumWorkers(); i++ {
			n += w.cl.Worker(i).Store().PinnedBytes()
		}
		return n
	}
	baseline := pinned()

	res, err := s.Exec(`SELECT lhs_mem.grp, COUNT(*) FROM lhs_mem JOIN rhs_mem ON lhs_mem.k = rhs_mem.k GROUP BY lhs_mem.grp`)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := false
	for _, st := range res.Stats.JoinStrategies {
		if strings.Contains(st, "shuffle-join") {
			shuffled = true
		}
	}
	if !shuffled {
		t.Fatalf("scenario broken: join strategies %v include no shuffle join", res.Stats.JoinStrategies)
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].(int64)
	}
	if total != 400 {
		t.Errorf("join row count = %d, want 400", total)
	}
	if got := pinned(); got != baseline {
		t.Errorf("pinned shuffle bytes = %d after statement, want baseline %d: map outputs outlived the statement", got, baseline)
	}
	// The session keeps answering after the cleanup.
	if _, err := s.Exec(`SELECT COUNT(*) FROM lhs_mem`); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionAttribution: with a bounded cluster, evictions of a
// session's cached table show up in that session's stats.
func TestEvictionAttribution(t *testing.T) {
	cl := cluster.New(cluster.Config{
		Workers: 2, Slots: 2,
		Profile:           cluster.SparkProfile(),
		WorkerMemoryBytes: 12 << 10,
	})
	defer cl.Close()
	svc := shuffle.NewService(cl, shuffle.Memory, t.TempDir())
	ctx := rdd.NewContext(cl, svc, rdd.Options{})
	fs, err := dfs.New(dfs.Config{Dir: t.TempDir(), BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSessionNamed(ctx, fs, catalog.New(), "pressed", exec.Options{})
	loadTenantTable(t, s, "fat", 3000, 0)
	for i := 0; i < 3; i++ {
		if _, err := s.Exec(`SELECT COUNT(*) FROM fat_mem`); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if cl.Metrics().CacheEvictions.Load() > 0 && st.Evictions == 0 {
		t.Errorf("cluster evicted %d blocks but session stats show none: %+v",
			cl.Metrics().CacheEvictions.Load(), st)
	}
	if st.CacheRecomputes == 0 && st.CacheHits == 0 {
		t.Errorf("no cache traffic recorded at all: %+v", st)
	}
}
