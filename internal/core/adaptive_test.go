package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"shark/internal/exec"
	"shark/internal/row"
)

var factSchema = row.Schema{
	{Name: "k", Type: row.TInt},
	{Name: "val", Type: row.TInt},
}

var dimSchema = row.Schema{
	{Name: "k", Type: row.TInt},
	{Name: "grp", Type: row.TString},
}

// genSkewedFact puts half the rows on key 0 and spreads the rest over
// keys 1..96 — the hot-key workload where one shuffle bucket
// serializes a static reduce stage.
func genSkewedFact(n int) []row.Row {
	out := make([]row.Row, n)
	for i := 0; i < n; i++ {
		k := int64(0)
		if i%2 == 1 {
			k = 1 + int64((i*7919)%96)
		}
		out[i] = row.Row{k, int64(i)}
	}
	return out
}

func genDim() []row.Row {
	out := make([]row.Row, 97)
	for k := range out {
		out[k] = row.Row{int64(k), fmt.Sprintf("g%d", k)}
	}
	return out
}

func sortedRowStrings(rows []row.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = fmt.Sprint(v)
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestAdaptiveJoinMatchesStaticAndCounts drives both runtime
// adaptations end to end: the skewed join must split its hot bucket
// (SkewSplits), the UDF-filtered join must convert to a broadcast join
// (BroadcastConversions), and both must produce exactly the static
// plan's results.
func TestAdaptiveJoinMatchesStaticAndCounts(t *testing.T) {
	// Thresholds scaled to the tiny fixture: both unfiltered sides are
	// bigger than BroadcastThreshold (shuffle join), the hot bucket far
	// exceeds SkewFactor × mean, and TargetPerReducerBytes forces real
	// splits.
	adaptiveOpts := exec.Options{BroadcastThreshold: 1024, TargetPerReducerBytes: 8 << 10}
	staticOpts := exec.Options{BroadcastThreshold: 1024, TargetPerReducerBytes: 8 << 10,
		DisableAdaptiveExec: true, JoinStrategy: exec.StrategyStatic}

	run := func(opts exec.Options) (joinRows, convRows []string, stats map[string]int64, strategies []string) {
		e := newEnv(t, opts)
		defer e.s.Close()
		e.writeDFS(t, "fact", factSchema, genSkewedFact(8000))
		e.writeDFS(t, "dim", dimSchema, genDim())
		if err := e.s.RegisterUDF("ENDS7", row.TBool, 1, 1, func(args []any) any {
			s, _ := args[0].(string)
			return strings.HasSuffix(s, "7")
		}); err != nil {
			t.Fatal(err)
		}
		res := e.mustExec(t, `SELECT dim.grp, COUNT(*), SUM(fact.val)
			FROM fact JOIN dim ON fact.k = dim.k GROUP BY dim.grp`)
		strategies = res.Stats.JoinStrategies
		conv := e.mustExec(t, `SELECT COUNT(*) FROM fact JOIN dim ON fact.k = dim.k
			WHERE ENDS7(dim.grp)`)
		ss := e.s.Stats()
		stats = map[string]int64{
			"skewSplits":           ss.SkewSplits,
			"broadcastConversions": ss.BroadcastConversions,
			"adaptiveCoalesces":    ss.AdaptiveCoalesces,
		}
		return sortedRowStrings(res.Rows), sortedRowStrings(conv.Rows), stats, strategies
	}

	aJoin, aConv, aStats, aStrategies := run(adaptiveOpts)
	sJoin, sConv, sStats, _ := run(staticOpts)

	if fmt.Sprint(aJoin) != fmt.Sprint(sJoin) {
		t.Errorf("adaptive join rows differ from static:\nadaptive: %v\nstatic:   %v", aJoin, sJoin)
	}
	if fmt.Sprint(aConv) != fmt.Sprint(sConv) {
		t.Errorf("adaptive UDF-join rows differ from static:\nadaptive: %v\nstatic:   %v", aConv, sConv)
	}
	if aStats["skewSplits"] == 0 {
		t.Errorf("adaptive run recorded no skew splits: %v (strategies %v)", aStats, aStrategies)
	}
	if aStats["broadcastConversions"] == 0 {
		t.Errorf("adaptive run recorded no broadcast conversions: %v", aStats)
	}
	if aStats["adaptiveCoalesces"] == 0 {
		t.Errorf("adaptive run recorded no adaptive coalesces: %v", aStats)
	}
	for k, v := range sStats {
		if v != 0 {
			t.Errorf("static run must make no adaptive decisions, got %s = %d", k, v)
		}
	}
}
