package core

import (
	"strings"
	"testing"
	"time"

	"shark/internal/exec"
)

// extractDur pulls the duration following marker out of a summary line
// ("-- statement: wall=12.3ms rows=97" → 12.3ms for marker "wall=").
func extractDur(t *testing.T, line, marker string) time.Duration {
	t.Helper()
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("line %q missing %q", line, marker)
	}
	rest := line[i+len(marker):]
	if j := strings.IndexAny(rest, " )"); j >= 0 {
		rest = rest[:j]
	}
	d, err := time.ParseDuration(rest)
	if err != nil {
		t.Fatalf("bad duration in %q: %v", line, err)
	}
	return d
}

// TestExplainAnalyzeSkewedJoin runs EXPLAIN ANALYZE over the skewed
// join workload and checks the contract the feature promises: an
// annotated plan tree whose per-node wall times sum to within 10% of
// the measured statement wall time, per-node row counts, and the PDE
// decisions (skew split, adaptive coalesce) taken at run time.
func TestExplainAnalyzeSkewedJoin(t *testing.T) {
	e := newEnv(t, exec.Options{BroadcastThreshold: 1024, TargetPerReducerBytes: 8 << 10})
	defer e.s.Close()
	e.writeDFS(t, "fact", factSchema, genSkewedFact(8000))
	e.writeDFS(t, "dim", dimSchema, genDim())

	res := e.mustExec(t, `EXPLAIN ANALYZE SELECT dim.grp, COUNT(*), SUM(fact.val)
		FROM fact JOIN dim ON fact.k = dim.k GROUP BY dim.grp`)
	if len(res.Schema) != 1 || res.Schema[0].Name != "plan" {
		t.Fatalf("schema = %v, want single plan column", res.Schema)
	}
	var lines []string
	for _, r := range res.Rows {
		lines = append(lines, r[0].(string))
	}
	text := strings.Join(lines, "\n")
	t.Logf("EXPLAIN ANALYZE:\n%s", text)

	// The tree: every operator line carries wall and rows annotations,
	// and the join/aggregate carry their strategy notes.
	for _, want := range []string{"Join", "Aggregate", "Scan", "wall=", "rows=",
		"adaptive:shuffle-join", "reducers="} {
		if !strings.Contains(text, want) {
			t.Errorf("plan tree missing %q:\n%s", want, text)
		}
	}

	// The summary: attributed per-node time sums to within 10% of the
	// measured statement wall.
	var stmtLine, attrLine, taskLine, pdeLine string
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "-- statement:"):
			stmtLine = l
		case strings.HasPrefix(l, "-- attributed:"):
			attrLine = l
		case strings.HasPrefix(l, "-- tasks="):
			taskLine = l
		case strings.HasPrefix(l, "-- pde:"):
			pdeLine = l
		}
	}
	if stmtLine == "" || attrLine == "" || taskLine == "" || pdeLine == "" {
		t.Fatalf("summary lines missing:\n%s", text)
	}
	wall := extractDur(t, stmtLine, "wall=")
	attributed := extractDur(t, attrLine, "attributed: ")
	if wall <= 0 {
		t.Fatalf("statement wall not positive: %v", wall)
	}
	if ratio := float64(attributed) / float64(wall); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("attributed %v vs wall %v: ratio %.2f outside [0.9, 1.1]\n%s",
			attributed, wall, ratio, text)
	}
	if strings.Contains(taskLine, "tasks=0 ") {
		t.Errorf("no tasks attributed: %q", taskLine)
	}

	// The PDE decisions the skewed workload must trigger.
	for _, want := range []string{"skew-split", "adaptive-coalesce"} {
		if !strings.Contains(pdeLine, want) {
			t.Errorf("pde summary missing %q: %q", want, pdeLine)
		}
	}

	// Plain EXPLAIN is unchanged: a plan tree with no measurements.
	plain := e.mustExec(t, `EXPLAIN SELECT COUNT(*) FROM fact`)
	for _, r := range plain.Rows {
		if strings.Contains(r[0].(string), "wall=") {
			t.Errorf("plain EXPLAIN carries measurements: %q", r[0])
		}
	}

	// EXPLAIN ANALYZE is SELECT-only, like EXPLAIN.
	if _, err := e.s.Exec(`EXPLAIN ANALYZE DROP TABLE fact`); err == nil {
		t.Errorf("EXPLAIN ANALYZE DROP succeeded, want error")
	}
}
