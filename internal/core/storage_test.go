package core

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"shark/internal/catalog"
	"shark/internal/cluster"
	"shark/internal/dfs"
	"shark/internal/exec"
	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/shuffle"
)

// newTieredWorld builds a shared world whose workers have memBytes of
// block-store capacity and an unbounded disk spill tier.
func newTieredWorld(t *testing.T, memBytes int64) *sharedWorld {
	t.Helper()
	cl := cluster.New(cluster.Config{
		Workers: 4, Slots: 2,
		Profile:           cluster.SparkProfile(),
		WorkerMemoryBytes: memBytes,
		WorkerDiskBytes:   -1,
	})
	t.Cleanup(cl.Close)
	svc := shuffle.NewService(cl, shuffle.Memory, t.TempDir())
	fs, err := dfs.New(dfs.Config{Dir: t.TempDir(), BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return &sharedWorld{cl: cl, ctx: rdd.NewContext(cl, svc, rdd.Options{}), fs: fs, cat: catalog.New()}
}

// loadWideTable ingests n rows with a chunky payload column, so cached
// partitions are heavy enough to trigger spills under a small budget.
func loadWideTable(t *testing.T, s *Session, name string, n int) {
	t.Helper()
	schema := row.Schema{
		{Name: "k", Type: row.TInt},
		{Name: "payload", Type: row.TString},
	}
	file := "data/" + s.Tag + "/" + name
	w, err := s.FS.Create(file, dfs.Text, schema)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 64)
	for i := 0; i < n; i++ {
		if err := w.Write(row.Row{int64(i), fmt.Sprintf("%s-%d", pad, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterExternal(name, file, schema); err != nil {
		t.Fatal(err)
	}
}

// TestStorageLevelSQL: TBLPROPERTIES select the level per table —
// "shark.cache"="MEMORY_AND_DISK" caches a table 4× the cache budget
// that still answers exactly like an uncached scan, served partly
// from the disk tier with no lineage recomputation.
func TestStorageLevelSQL(t *testing.T) {
	const nRows = 3000
	w := newTieredWorld(t, 20<<10)
	s := NewSessionNamed(w.ctx, w.fs, catalog.New(), "lvl", exec.Options{})
	defer s.Close()
	s.DefaultCacheParts = 16
	loadWideTable(t, s, "wide", nRows)

	res, err := s.Exec(`CREATE TABLE wide_mem TBLPROPERTIES ("shark.cache"="MEMORY_AND_DISK") AS SELECT * FROM wide`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "MEMORY_AND_DISK") {
		t.Errorf("CTAS message %q does not name the level", res.Message)
	}
	entry, err := s.Cat.Get("wide_mem")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Mem.Level != rdd.MemoryAndDisk {
		t.Errorf("memtable level = %v, want MEMORY_AND_DISK", entry.Mem.Level)
	}

	want, err := s.Exec("SELECT k, payload FROM wide ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		got, err := s.Exec("SELECT k, payload FROM wide_mem ORDER BY k")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("rep %d: cached result differs from source (%d vs %d rows)",
				rep, len(got.Rows), len(want.Rows))
		}
	}
	m := w.ctx.Scheduler().Metrics()
	if w.cl.DiskTierStats().SpilledBlocks == 0 {
		t.Error("no partitions spilled despite the table exceeding the cache budget")
	}
	if m.DiskHits.Load() == 0 {
		t.Error("no disk hits while scanning a MEMORY_AND_DISK table under pressure")
	}
	if got := m.CacheRecomputes.Load(); got != 0 {
		t.Errorf("%d lineage recomputes despite the disk tier", got)
	}
	stats := s.Stats()
	if stats.DiskHits == 0 {
		t.Error("session stats did not attribute the disk hits")
	}
}

// TestStorageLevelProperty: "shark.storageLevel" overrides the plain
// "shark.cache"="true" default, and the session-wide
// DefaultStorageLevel applies when neither names a level.
func TestStorageLevelProperty(t *testing.T) {
	w := newTieredWorld(t, 1<<20)
	s := NewSessionNamed(w.ctx, w.fs, catalog.New(), "lvl2", exec.Options{})
	defer s.Close()
	s.DefaultStorageLevel = rdd.MemoryAndDisk
	loadWideTable(t, s, "wide", 200)

	if _, err := s.Exec(`CREATE TABLE t1 TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM wide`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`CREATE TABLE t2 TBLPROPERTIES ("shark.cache"="true", "shark.storageLevel"="DISK_ONLY") AS SELECT * FROM wide`); err != nil {
		t.Fatal(err)
	}
	e1, _ := s.Cat.Get("t1")
	e2, _ := s.Cat.Get("t2")
	if e1.Mem.Level != rdd.MemoryAndDisk {
		t.Errorf("t1 level = %v, want the session default MEMORY_AND_DISK", e1.Mem.Level)
	}
	if e2.Mem.Level != rdd.DiskOnly {
		t.Errorf("t2 level = %v, want DISK_ONLY", e2.Mem.Level)
	}
	res, err := s.Exec("SELECT COUNT(*) FROM t2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 200 {
		t.Errorf("DISK_ONLY count = %v, want 200", res.Rows[0][0])
	}
}

// TestSessionCloseDeletesSpilledFiles: closing a session drops its
// tables from every tier — the spilled partitions' files included —
// so a long-lived shared cluster does not leak temp-dir disk.
func TestSessionCloseDeletesSpilledFiles(t *testing.T) {
	w := newTieredWorld(t, 20<<10)
	s := NewSessionNamed(w.ctx, w.fs, catalog.New(), "leaky", exec.Options{})
	s.DefaultCacheParts = 16
	loadWideTable(t, s, "wide", 3000)
	if _, err := s.Exec(`CREATE TABLE wide_mem TBLPROPERTIES ("shark.cache"="MEMORY_AND_DISK") AS SELECT * FROM wide`); err != nil {
		t.Fatal(err)
	}
	var spilled int64
	for i := 0; i < w.cl.NumWorkers(); i++ {
		spilled += w.cl.Worker(i).Store().Disk().ApproxBytes()
	}
	if spilled == 0 {
		t.Fatal("nothing spilled before Close")
	}
	s.Close()
	for i := 0; i < w.cl.NumWorkers(); i++ {
		st := w.cl.Worker(i).Store()
		// The memory tier may still pin shuffle map outputs (the
		// engine's statement shuffles outlive the session — a known
		// ROADMAP item); the session's cached partitions must be gone
		// from both tiers, files included.
		for _, k := range st.Keys() {
			if strings.HasPrefix(k, "rdd/") {
				t.Errorf("worker %d still holds cached block %s after Close", i, k)
			}
		}
		d := st.Disk()
		if b := d.ApproxBytes(); b != 0 {
			t.Errorf("worker %d still accounts %d disk bytes after Close", i, b)
		}
		if ents, err := os.ReadDir(d.Dir()); err == nil && len(ents) != 0 {
			t.Errorf("worker %d leaked %d spill files after Close", i, len(ents))
		}
	}
}
