package core

import (
	"strings"
	"testing"

	"shark/internal/exec"
	"shark/internal/row"
)

func TestMultiKeyOrderBy(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	res := e.mustExec(t, `SELECT countryCode, destURL, COUNT(*) AS c FROM uservisits
		GROUP BY countryCode, destURL ORDER BY countryCode, c DESC, destURL`)
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		pc, cc := prev[0].(string), cur[0].(string)
		if pc > cc {
			t.Fatalf("primary key order violated at %d: %q > %q", i, pc, cc)
		}
		if pc == cc {
			if prev[2].(int64) < cur[2].(int64) {
				t.Fatalf("secondary DESC order violated at %d", i)
			}
			if prev[2].(int64) == cur[2].(int64) && prev[1].(string) > cur[1].(string) {
				t.Fatalf("tertiary order violated at %d", i)
			}
		}
	}
}

func TestLikeAndInEndToEnd(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	res := e.mustExec(t, `SELECT COUNT(*) FROM uservisits
		WHERE destURL LIKE 'url-1%' AND countryCode IN ('US', 'CA')`)
	want := int64(0)
	for _, r := range genVisits(1000) {
		if strings.HasPrefix(r[1].(string), "url-1") &&
			(r[4].(string) == "US" || r[4].(string) == "CA") {
			want++
		}
	}
	if res.Rows[0][0].(int64) != want {
		t.Errorf("count = %v, want %d", res.Rows[0][0], want)
	}
}

func TestArithmeticProjection(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 100, true)
	res := e.mustExec(t, `SELECT adRevenue * 2.0 + 1.0 AS x, adRevenue FROM uservisits LIMIT 5`)
	for _, r := range res.Rows {
		want := r[1].(float64)*2 + 1
		if r[0].(float64) != want {
			t.Errorf("x = %v, want %v", r[0], want)
		}
	}
}

func TestGroupByMultipleColumns(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 2000, true)
	res := e.mustExec(t, `SELECT countryCode, destURL, SUM(adRevenue) FROM uservisits
		GROUP BY countryCode, destURL`)
	ref := map[string]float64{}
	for _, r := range genVisits(2000) {
		ref[r[4].(string)+"|"+r[1].(string)] += r[3].(float64)
	}
	if len(res.Rows) != len(ref) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(ref))
	}
}

func TestCTASFromJoin(t *testing.T) {
	e := newEnv(t, exec.Options{})
	e.writeDFS(t, "rankings_ext", rankingsSchema, genRankings(300))
	e.writeDFS(t, "uservisits_ext", visitsSchema, genVisits(1200))
	e.mustExec(t, `CREATE TABLE joined TBLPROPERTIES ("shark.cache"="true") AS
		SELECT uservisits_ext.sourceIP, rankings_ext.pageRank, uservisits_ext.adRevenue
		FROM rankings_ext JOIN uservisits_ext ON rankings_ext.pageURL = uservisits_ext.destURL`)
	res := e.mustExec(t, `SELECT COUNT(*), AVG(pageRank) FROM joined`)
	if res.Rows[0][0].(int64) <= 0 {
		t.Error("CTAS-from-join produced no rows")
	}
}

func TestIsNullHandling(t *testing.T) {
	e := newEnv(t, exec.Options{})
	rows := []row.Row{
		{"1.1.1.1", "u1", int64(10957), 5.0, "US"},
		{"2.2.2.2", "u2", nil, nil, "CA"},
		{"3.3.3.3", "u3", int64(10958), 7.0, nil},
	}
	e.writeDFS(t, "sparse", visitsSchema, rows)
	e.mustExec(t, `CREATE TABLE sparse_mem TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM sparse`)
	res := e.mustExec(t, `SELECT COUNT(*), COUNT(adRevenue), SUM(adRevenue) FROM sparse_mem`)
	r := res.Rows[0]
	if r[0].(int64) != 3 || r[1].(int64) != 2 || r[2].(float64) != 12.0 {
		t.Errorf("null aggregation: %v", r)
	}
	res = e.mustExec(t, `SELECT COUNT(*) FROM sparse_mem WHERE countryCode IS NULL`)
	if res.Rows[0][0].(int64) != 1 {
		t.Errorf("IS NULL count = %v", res.Rows[0][0])
	}
	res = e.mustExec(t, `SELECT COUNT(*) FROM sparse_mem WHERE adRevenue > 0`)
	if res.Rows[0][0].(int64) != 2 {
		t.Errorf("NULL comparison should be false: %v", res.Rows[0][0])
	}
}

func TestZeroRowQuery(t *testing.T) {
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 100, true)
	res := e.mustExec(t, `SELECT countryCode, COUNT(*) FROM uservisits WHERE adRevenue > 1e12 GROUP BY countryCode`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
	// global aggregate over empty input still yields one row
	res = e.mustExec(t, `SELECT COUNT(*), SUM(adRevenue) FROM uservisits WHERE adRevenue > 1e12`)
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 0 || res.Rows[0][1] != nil {
		t.Errorf("empty global agg = %v", res.Rows)
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	e := newEnv(t, exec.Options{})
	e.writeDFS(t, "rankings_ext", rankingsSchema, genRankings(200))
	e.mustExec(t, `CREATE TABLE r TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM rankings_ext`)
	res := e.mustExec(t, `SELECT COUNT(*) FROM r a JOIN r b ON a.pageURL = b.pageURL`)
	if res.Rows[0][0].(int64) != 200 {
		t.Errorf("self join count = %v", res.Rows[0][0])
	}
}

func TestStaticAdaptiveFallbackToShuffleJoin(t *testing.T) {
	// When the statically-predicted small side turns out big, the
	// static+adaptive planner must fall back to a full shuffle join
	// and still produce correct results.
	e := newEnv(t, exec.Options{JoinStrategy: exec.StrategyStaticAdaptive, BroadcastThreshold: 1})
	e.writeDFS(t, "rankings_ext", rankingsSchema, genRankings(400))
	e.writeDFS(t, "uservisits_ext", visitsSchema, genVisits(2000))
	e.mustExec(t, `CREATE TABLE rankings TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM rankings_ext`)
	e.mustExec(t, `CREATE TABLE uservisits TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM uservisits_ext`)
	res := e.mustExec(t, `SELECT COUNT(*) FROM rankings JOIN uservisits ON rankings.pageURL = uservisits.destURL`)
	if len(res.Stats.JoinStrategies) != 1 || !strings.Contains(res.Stats.JoinStrategies[0], "shuffle-join") {
		t.Fatalf("expected fallback shuffle join, got %v", res.Stats.JoinStrategies)
	}
	ranks := map[string]bool{}
	for _, r := range genRankings(400) {
		ranks[r[0].(string)] = true
	}
	want := int64(0)
	for _, v := range genVisits(2000) {
		if ranks[v[1].(string)] {
			want++
		}
	}
	if res.Rows[0][0].(int64) != want {
		t.Errorf("count = %v, want %d", res.Rows[0][0], want)
	}
}

func TestSql2RddOverAggregate(t *testing.T) {
	// sql2rdd must work for plans with shuffles (aggregates), not just
	// narrow pipelines.
	e := newEnv(t, exec.Options{})
	setupVisits(t, e, 1000, true)
	tr, err := e.s.Query(`SELECT countryCode, SUM(adRevenue) AS rev FROM uservisits GROUP BY countryCode`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.RDD.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("groups = %d", n)
	}
	// downstream RDD processing over the aggregate result
	total, err := tr.RDD.Map(func(v any) any { return v.(row.Row)[1] }).
		Reduce(func(a, b any) any { return a.(float64) + b.(float64) })
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, r := range genVisits(1000) {
		want += r[3].(float64)
	}
	if diff := total.(float64) - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("sum over rdd = %v, want %v", total, want)
	}
}
