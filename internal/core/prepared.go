package core

import (
	"context"
	"errors"
	"fmt"

	"shark/internal/obs"
	"shark/internal/row"
	"shark/internal/sqlparse"
)

// ErrBind marks a statement the native binder cannot take: the text
// does not parse under the native grammar, the argument count or
// types do not match, or the statement class does not support
// parameters. The server uses it to decide when the legacy
// interpolation fallback (wire.Interpolate) is still allowed to run
// for old clients.
var ErrBind = errors.New("core: cannot bind natively")

// Prepared is a statement parsed once and executable many times with
// different argument values. The held AST is immutable: every
// execution binds arguments into a fresh copy, so one Prepared can be
// executed concurrently.
type Prepared struct {
	SQL       string
	norm      string
	stmt      sqlparse.Statement
	numParams int
}

// NumParams reports how many `?` parameters the statement takes.
func (p *Prepared) NumParams() int { return p.numParams }

// Prepare parses one SQL statement into a reusable handle without
// executing it. The parse consults the plan cache, so preparing a
// statement the session (or a shared-catalog peer) has already seen
// costs a cache lookup.
func (s *Session) Prepare(sql string) (*Prepared, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	norm := sqlparse.Normalize(sql)
	stmt, err := s.parseCached(sql, norm)
	if err != nil {
		return nil, err
	}
	return &Prepared{SQL: sql, norm: norm, stmt: stmt, numParams: sqlparse.NumParams(stmt)}, nil
}

// parseCached resolves SQL text to its parsed AST through the plan
// cache when one is attached. Parse errors are never cached.
func (s *Session) parseCached(sql, norm string) (sqlparse.Statement, error) {
	if s.Plans == nil {
		return sqlparse.Parse(sql)
	}
	key := s.planKey(norm)
	if e, ok := s.Plans.lookup(key); ok {
		return e.stmt, nil
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	s.Plans.insert(&planEntry{key: key, stmt: stmt, numParams: sqlparse.NumParams(stmt)})
	return stmt, nil
}

// ExecPrepared executes a prepared statement with the given argument
// values.
func (s *Session) ExecPrepared(p *Prepared, args row.Row) (*Result, error) {
	return s.ExecPreparedCtx(context.Background(), p, args)
}

// ExecPreparedCtx executes a prepared statement with the given
// argument values, binding them into the parsed tree — the text is
// never re-lexed, so argument bytes can never be read as SQL syntax.
// Cancellation semantics match ExecContext.
func (s *Session) ExecPreparedCtx(gctx context.Context, p *Prepared, args row.Row) (*Result, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	return s.execPrepared(gctx, p, args)
}

// ExecArgs parses (via the plan cache) and executes one statement
// with native parameter binding.
func (s *Session) ExecArgs(sql string, args row.Row) (*Result, error) {
	return s.ExecArgsCtx(context.Background(), sql, args)
}

// ExecArgsCtx is the one-shot prepare-bind-execute path: parse via
// the plan cache, bind args natively, run. A parse failure is
// reported wrapped in ErrBind so the serving layer can decide whether
// the legacy interpolation fallback applies.
func (s *Session) ExecArgsCtx(gctx context.Context, sql string, args row.Row) (*Result, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	tr := obs.FromContext(gctx)
	psp := tr.StartSpan("parse")
	norm := sqlparse.Normalize(sql)
	stmt, err := s.parseCached(sql, norm)
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBind, err)
	}
	p := &Prepared{SQL: sql, norm: norm, stmt: stmt, numParams: sqlparse.NumParams(stmt)}
	return s.execPrepared(gctx, p, args)
}

// execPrepared binds, consults the result cache, and executes. A
// result-cache hit returns before job admission — the fast path does
// not touch the scheduler at all.
func (s *Session) execPrepared(gctx context.Context, p *Prepared, args row.Row) (*Result, error) {
	tr := obs.FromContext(gctx)
	stmt := p.stmt
	if p.numParams > 0 || len(args) > 0 {
		bsp := tr.StartSpan("bind")
		bound, err := sqlparse.Bind(stmt, args)
		bsp.End()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBind, err)
		}
		stmt = bound
	}
	if sel, ok := stmt.(*sqlparse.SelectStmt); ok && s.Results != nil && cacheableSelect(sel) {
		// Key on the input-table versions read before execution: any
		// write that lands later bumps them, so the entry written
		// below can never satisfy a lookup issued after the write.
		rkey := s.resultKey(p.norm, args, inputTables(sel))
		if res := s.Results.get(rkey); res != nil {
			return res, nil
		}
		res, err := s.execStatement(gctx, stmt, p)
		if err == nil {
			s.Results.put(rkey, res)
		}
		return res, err
	}
	return s.execStatement(gctx, stmt, p)
}
