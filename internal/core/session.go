// Package core implements the Shark session — the paper's primary
// contribution assembled: SQL text is parsed, analyzed against the
// metastore, optimized, and executed either on the Shark RDD engine
// (with PDE, columnar memstore and map pruning) or handed to callers
// as an RDD for mixed SQL + machine-learning pipelines (sql2rdd, §4).
package core

import (
	"fmt"
	"strings"

	"shark/internal/catalog"
	"shark/internal/dfs"
	"shark/internal/exec"
	"shark/internal/expr"
	"shark/internal/memtable"
	"shark/internal/plan"
	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/sqlparse"
)

// Session is a connected Shark client: catalog + engine + cluster.
type Session struct {
	Ctx    *rdd.Context
	FS     *dfs.FS
	Cat    *catalog.Catalog
	Engine *exec.Engine

	// DefaultCacheParts is the partition count used when caching
	// tables (0 = 4 × cluster slots).
	DefaultCacheParts int
}

// NewSession assembles a session over an execution context.
func NewSession(ctx *rdd.Context, fs *dfs.FS, opts exec.Options) *Session {
	cat := catalog.New()
	return &Session{
		Ctx:    ctx,
		FS:     fs,
		Cat:    cat,
		Engine: exec.New(ctx, cat, fs, opts),
	}
}

func (s *Session) cacheParts() int {
	if s.DefaultCacheParts > 0 {
		return s.DefaultCacheParts
	}
	return 4 * s.Ctx.Cluster.TotalSlots()
}

// Result is a materialized statement result. DDL statements return a
// Result with an informational message and no rows.
type Result struct {
	Schema  row.Schema
	Rows    []row.Row
	Stats   exec.QueryStats
	Message string
}

// Exec parses and executes one SQL statement.
func (s *Session) Exec(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch t := stmt.(type) {
	case *sqlparse.SelectStmt:
		return s.runSelect(t)
	case *sqlparse.CreateTableStmt:
		return s.runCreate(t)
	case *sqlparse.DropTableStmt:
		if !s.Cat.Drop(t.Name) && !t.IfExists {
			return nil, fmt.Errorf("core: unknown table %q", t.Name)
		}
		return &Result{Message: fmt.Sprintf("dropped %s", t.Name)}, nil
	case *sqlparse.ExplainStmt:
		return s.runExplain(t)
	}
	return nil, fmt.Errorf("core: unsupported statement %T", stmt)
}

func (s *Session) runSelect(sel *sqlparse.SelectStmt) (*Result, error) {
	p, err := plan.Analyze(s.Cat, sel)
	if err != nil {
		return nil, err
	}
	res, err := s.Engine.Run(p)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: res.Schema, Rows: res.Rows, Stats: res.Stats}, nil
}

func (s *Session) runExplain(e *sqlparse.ExplainStmt) (*Result, error) {
	sel, ok := e.Stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: EXPLAIN supports SELECT only")
	}
	p, err := plan.Analyze(s.Cat, sel)
	if err != nil {
		return nil, err
	}
	text := plan.Explain(p)
	out := &Result{Schema: row.Schema{{Name: "plan", Type: row.TString}}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		out.Rows = append(out.Rows, row.Row{line})
	}
	return out, nil
}

func (s *Session) runCreate(ct *sqlparse.CreateTableStmt) (*Result, error) {
	if s.Cat.Exists(ct.Name) {
		if ct.IfNotExists {
			return &Result{Message: fmt.Sprintf("table %s exists", ct.Name)}, nil
		}
		return nil, fmt.Errorf("core: table %q already exists", ct.Name)
	}
	if ct.As == nil {
		return s.createExternal(ct)
	}
	return s.createAsSelect(ct)
}

// createExternal registers a DFS-backed table.
func (s *Session) createExternal(ct *sqlparse.CreateTableStmt) (*Result, error) {
	if len(ct.Cols) == 0 || ct.Location == "" {
		return nil, fmt.Errorf("core: external table needs columns and LOCATION")
	}
	schema := make(row.Schema, len(ct.Cols))
	for i, c := range ct.Cols {
		schema[i] = row.Field{Name: c.Name, Type: c.Type}
	}
	format := dfs.Text
	if strings.EqualFold(ct.Format, "BINARY") {
		format = dfs.Binary
	}
	meta, err := s.FS.Stat(ct.Location)
	if err != nil {
		return nil, err
	}
	if len(meta.Schema) != len(schema) {
		return nil, fmt.Errorf("core: file %s has %d columns, DDL declares %d",
			ct.Location, len(meta.Schema), len(schema))
	}
	err = s.Cat.Register(&catalog.Table{
		Name:    ct.Name,
		Schema:  schema,
		File:    ct.Location,
		Format:  format,
		Props:   ct.Props,
		EstRows: meta.TotalRows(),
	})
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created external table %s (%d rows)", ct.Name, meta.TotalRows())}, nil
}

// createAsSelect runs CTAS. With TBLPROPERTIES("shark.cache"="true")
// the result is loaded into the memstore (optionally DISTRIBUTE BY for
// co-partitioning); otherwise it is written to a DFS file.
func (s *Session) createAsSelect(ct *sqlparse.CreateTableStmt) (*Result, error) {
	sel := ct.As
	p, err := plan.Analyze(s.Cat, sel)
	if err != nil {
		return nil, err
	}
	schema := p.Schema()

	cached := strings.EqualFold(ct.Props["shark.cache"], "true")
	if !cached {
		return s.ctasToDFS(ct, p, schema)
	}

	// Build the row RDD for loading. Sort/Limit at the top of a CTAS
	// is unusual; run through the engine and parallelize when present.
	srcRDD, err := s.planToRDD(p)
	if err != nil {
		return nil, err
	}

	var mem *memtable.Table
	if sel.DistributeBy != "" {
		keyCol := schema.Index(sel.DistributeBy)
		if keyCol < 0 {
			return nil, fmt.Errorf("core: DISTRIBUTE BY column %q not in result", sel.DistributeBy)
		}
		numParts := s.cacheParts()
		if other := ct.Props["copartition"]; other != "" {
			ot, err := s.Cat.Get(other)
			if err != nil {
				return nil, fmt.Errorf("core: copartition target: %w", err)
			}
			if ot.Mem == nil || ot.Mem.Partitioner == nil {
				return nil, fmt.Errorf("core: copartition target %q is not a distributed cached table", other)
			}
			numParts = ot.Mem.NumPartitions()
		}
		mem, err = memtable.LoadDistributed(ct.Name, schema, srcRDD, keyCol, numParts)
	} else {
		mem, err = memtable.Load(ct.Name, schema, srcRDD)
	}
	if err != nil {
		return nil, err
	}
	entry := &catalog.Table{
		Name:            ct.Name,
		Schema:          schema,
		Mem:             mem,
		Props:           ct.Props,
		EstRows:         mem.TotalRows(),
		DistKey:         sel.DistributeBy,
		CopartitionWith: ct.Props["copartition"],
	}
	if err := s.Cat.Register(entry); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("cached table %s (%d rows, %d partitions, %d bytes)",
		ct.Name, mem.TotalRows(), mem.NumPartitions(), mem.TotalBytes())}, nil
}

func (s *Session) ctasToDFS(ct *sqlparse.CreateTableStmt, p plan.Node, schema row.Schema) (*Result, error) {
	res, err := s.Engine.Run(p)
	if err != nil {
		return nil, err
	}
	format := dfs.Text
	if strings.EqualFold(ct.Format, "BINARY") {
		format = dfs.Binary
	}
	file := "warehouse/" + strings.ToLower(ct.Name)
	w, err := s.FS.Create(file, format, schema)
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		if err := w.Write(r); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	err = s.Cat.Register(&catalog.Table{
		Name:    ct.Name,
		Schema:  schema,
		File:    file,
		Format:  format,
		Props:   ct.Props,
		EstRows: int64(len(res.Rows)),
	})
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created table %s (%d rows on DFS)", ct.Name, len(res.Rows))}, nil
}

// planToRDD lowers a plan to a row RDD without materializing at the
// master, for CTAS loads and sql2rdd. Top-level Sort/Limit still
// require materialization.
func (s *Session) planToRDD(p plan.Node) (*rdd.RDD, error) {
	switch p.(type) {
	case *plan.Limit, *plan.Sort:
		res, err := s.Engine.Run(p)
		if err != nil {
			return nil, err
		}
		data := make([]any, len(res.Rows))
		for i, r := range res.Rows {
			data[i] = r
		}
		return s.Ctx.Parallelize(data, s.Ctx.Cluster.TotalSlots()), nil
	}
	return s.Engine.CompileToRDD(p)
}

// TableRDD is a query result as a live RDD plus its schema — the
// sql2rdd bridge of §4.1.
type TableRDD struct {
	RDD    *rdd.RDD
	Schema row.Schema
}

// RowView wraps a row with its schema for by-name access (Listing 1's
// row.getInt("age") style).
type RowView struct {
	Row    row.Row
	Schema row.Schema
}

// GetInt returns an integer column by name (0 when NULL or absent).
func (v RowView) GetInt(name string) int64 {
	i := v.Schema.Index(name)
	if i < 0 || v.Row[i] == nil {
		return 0
	}
	n, _ := row.AsInt(v.Row[i])
	return n
}

// GetFloat returns a float column by name.
func (v RowView) GetFloat(name string) float64 {
	i := v.Schema.Index(name)
	if i < 0 || v.Row[i] == nil {
		return 0
	}
	f, _ := row.AsFloat(v.Row[i])
	return f
}

// GetStr returns a string column by name.
func (v RowView) GetStr(name string) string {
	i := v.Schema.Index(name)
	if i < 0 || v.Row[i] == nil {
		return ""
	}
	s, _ := v.Row[i].(string)
	return s
}

// MapRows transforms each result row through f with schema-aware
// access, returning a new RDD — the feature-extraction step of the §4
// SQL-to-ML pipeline.
func (t *TableRDD) MapRows(f func(RowView) any) *rdd.RDD {
	schema := t.Schema.Clone()
	return t.RDD.Map(func(v any) any {
		return f(RowView{Row: v.(row.Row), Schema: schema})
	})
}

// Cache marks the underlying RDD for in-memory caching.
func (t *TableRDD) Cache() *TableRDD {
	t.RDD.Cache()
	return t
}

// Query compiles a SELECT and returns its result as a TableRDD without
// collecting it, so ML code can keep processing in the cluster.
func (s *Session) Query(sql string) (*TableRDD, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: sql2rdd requires a SELECT")
	}
	p, err := plan.Analyze(s.Cat, sel)
	if err != nil {
		return nil, err
	}
	r, err := s.planToRDD(p)
	if err != nil {
		return nil, err
	}
	return &TableRDD{RDD: r, Schema: p.Schema()}, nil
}

// RegisterUDF installs a scalar UDF usable from SQL.
func (s *Session) RegisterUDF(name string, ret row.Type, minArgs, maxArgs int, fn func(args []any) any) error {
	return s.Cat.RegisterUDF(&expr.UDF{
		Name: name, Ret: ret, MinArgs: minArgs, MaxArgs: maxArgs, RetFromArg: -1, Fn: fn,
	})
}

// RegisterMemTable registers an already-loaded memstore table (used by
// harness code that loads data programmatically).
func (s *Session) RegisterMemTable(mem *memtable.Table, props map[string]string) error {
	return s.Cat.Register(&catalog.Table{
		Name:    mem.Name,
		Schema:  mem.Schema,
		Mem:     mem,
		Props:   props,
		EstRows: mem.TotalRows(),
	})
}

// RegisterExternal registers a DFS file as a table.
func (s *Session) RegisterExternal(name, file string, schema row.Schema) error {
	meta, err := s.FS.Stat(file)
	if err != nil {
		return err
	}
	return s.Cat.Register(&catalog.Table{
		Name:    name,
		Schema:  schema,
		File:    file,
		Format:  meta.Format,
		EstRows: meta.TotalRows(),
	})
}
