// Package core implements the Shark session — the paper's primary
// contribution assembled: SQL text is parsed, analyzed against the
// metastore, optimized, and executed either on the Shark RDD engine
// (with PDE, columnar memstore and map pruning) or handed to callers
// as an RDD for mixed SQL + machine-learning pipelines (sql2rdd, §4).
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shark/internal/catalog"
	"shark/internal/dfs"
	"shark/internal/exec"
	"shark/internal/expr"
	"shark/internal/memtable"
	"shark/internal/obs"
	"shark/internal/plan"
	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/shuffle"
	"shark/internal/sqlparse"
)

// Session is a connected Shark client: a catalog view plus an engine
// over a (possibly shared) execution context. Many sessions may share
// one rdd.Context/cluster; each runs its statements as separate
// scheduler jobs tagged with the session's Tag, so scheduling is
// fair-shared across them and metrics are attributable per session.
type Session struct {
	Ctx    *rdd.Context
	FS     *dfs.FS
	Cat    *catalog.Catalog
	Engine *exec.Engine

	// Tag names the session in scheduler job attribution and
	// SessionStats.
	Tag string

	// Priority is the session's fair-share weight (<=0 reads as 1):
	// every statement's cluster tasks carry it, and under weighted
	// fair scheduling a priority-4 session sustains 4x the running
	// tasks of a priority-1 session when both are backlogged.
	Priority int

	// MaxConcurrentJobs caps how many of the session's statements may
	// execute at once (0 = unlimited). Excess statements wait in a
	// FIFO admission queue before dispatching any tasks; cancelling a
	// waiting statement's context releases its place immediately.
	MaxConcurrentJobs int

	// DefaultCacheParts is the partition count used when caching
	// tables. DISTRIBUTE BY loads use it as the hash-partition count
	// (0 = 4 × cluster slots); plain cached CTAS repartitions the
	// source round-robin to it when set (0 = keep the source
	// partitioning, e.g. one partition per DFS block).
	DefaultCacheParts int

	// DefaultStorageLevel is the storage level cached tables persist
	// at when TBLPROPERTIES names none ("shark.cache"="true").
	// Per-table levels override it: "shark.cache"="MEMORY_AND_DISK"
	// (or "DISK_ONLY"), or a separate "shark.storageLevel" property.
	DefaultStorageLevel rdd.StorageLevel

	// Plans caches parsed (and, for parameterless SELECTs, analyzed)
	// statements keyed on normalized text + engine options + catalog
	// version. Sessions attached to a shared catalog share one
	// instance so invalidation-by-version covers all of them. nil
	// disables plan caching.
	Plans *PlanCache

	// Results, when non-nil, caches whole results of deterministic
	// read-only statements in the cluster's block stores under a
	// per-session byte quota. Opt-in.
	Results *ResultCache

	// mu guards created — the tables this session registered, in
	// order; Close drops exactly these, never another session's —
	// and optsFP, the lazily rendered engine-options fingerprint.
	mu      sync.Mutex
	created []string
	optsFP  string

	// closed latches on the first Close; later statements fail fast
	// with ErrClosed instead of racing the teardown.
	closed atomic.Bool
}

// ErrClosed marks a statement issued on a closed session (or one
// whose cluster has been shut down). Callers distinguish it from
// statement failures with errors.Is.
var ErrClosed = errors.New("shark: session closed")

// nextSessionTag numbers auto-tagged sessions process-wide.
var nextSessionTag atomic.Int64

// NewSession assembles a session with a private catalog over an
// execution context, auto-generating its tag.
func NewSession(ctx *rdd.Context, fs *dfs.FS, opts exec.Options) *Session {
	return NewSessionNamed(ctx, fs, catalog.New(),
		fmt.Sprintf("session-%d", nextSessionTag.Add(1)), opts)
}

// NewSessionNamed assembles a session over an execution context with
// an explicit catalog (pass a shared catalog for a shared metastore
// view, or a fresh one for namespace isolation) and session tag.
func NewSessionNamed(ctx *rdd.Context, fs *dfs.FS, cat *catalog.Catalog, tag string, opts exec.Options) *Session {
	return &Session{
		Ctx:    ctx,
		FS:     fs,
		Cat:    cat,
		Tag:    tag,
		Engine: exec.New(ctx, cat, fs, opts),
		Plans:  NewPlanCache(0),
	}
}

// register adds a table to the session's catalog stamped with the
// session's tag as owner and records it for scoped teardown.
func (s *Session) register(t *catalog.Table) error {
	t.Owner = s.Tag
	if err := s.Cat.Register(t); err != nil {
		return err
	}
	s.noteCreated(t.Name)
	return nil
}

// noteCreated records a table this session registered.
func (s *Session) noteCreated(name string) {
	s.mu.Lock()
	s.created = append(s.created, name)
	s.mu.Unlock()
}

// forgetCreated removes a dropped table from the session's ownership
// list.
func (s *Session) forgetCreated(name string) {
	s.mu.Lock()
	keep := s.created[:0]
	for _, n := range s.created {
		if !strings.EqualFold(n, name) {
			keep = append(keep, n)
		}
	}
	s.created = keep
	s.mu.Unlock()
}

// Close releases the session's state: every table it registered is
// dropped from its catalog (evicting the session's memstore blocks
// from worker memory). On a shared cluster this never touches the
// cluster itself or other sessions' tables — the atomic owner-checked
// drop guards against deleting a table another session re-created
// under a name this session once used. Closing is idempotent: only
// the first Close tears down, and concurrent ExecContext calls fail
// with ErrClosed instead of racing it.
func (s *Session) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	names := s.created
	s.created = nil
	s.mu.Unlock()
	for _, n := range names {
		s.Cat.DropOwned(n, s.Tag)
	}
	// Remove the session's scoped DFS files (LoadRows ingests under
	// data/<tag>/, CTAS-to-DFS writes under warehouse/<tag>/): a
	// long-lived cluster must not leak DFS space per closed session,
	// and a later session reusing the name must be able to load the
	// same table names. Unscoped paths (e.g. harness-generated shared
	// inputs) are untouched.
	s.FS.DeletePrefix("data/" + s.Tag + "/")
	s.FS.DeletePrefix("warehouse/" + strings.ToLower(s.Tag) + "/")
	// Free the session's metrics aggregate and RDD-ownership entries;
	// a long-lived cluster must not accumulate per-session state.
	s.Ctx.ReleaseSession(s.Tag)
}

// Stats snapshots what the cluster has done for this session: jobs,
// tasks and task-time, cache hits / remote hits / recomputes,
// evictions of partitions the session materialized, admission-control
// activity (waits, admitted jobs), and mid-partition cancellations.
func (s *Session) Stats() rdd.SessionStats {
	return s.Ctx.SessionStats(s.Tag)
}

// checkOpen fails fast when the session — or the cluster under it —
// has been closed, before any parse or job admission work.
func (s *Session) checkOpen() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.Ctx.Cluster.Closed() {
		return fmt.Errorf("%w: cluster is shut down", ErrClosed)
	}
	return nil
}

// startJob opens the scheduler job for one statement, applying the
// session's Priority (fair-share weight) and MaxConcurrentJobs
// (admission cap). It blocks while the session is at its cap; a
// cancelled gctx releases the admission wait with an error wrapping
// the cancellation, before any job exists or any task is dispatched.
func (s *Session) startJob(gctx context.Context) (*rdd.Job, error) {
	return s.Ctx.StartJobCfg(gctx, s.Tag, rdd.JobConfig{
		Weight:            s.Priority,
		MaxConcurrentJobs: s.MaxConcurrentJobs,
	})
}

// releaseStatementShuffles frees the shuffle map outputs a finished
// statement's job pinned in worker memory, keeping every shuffle still
// reachable from a live RDD: the lineage of any cached table in the
// session's catalog (shared catalogs cover other sessions' tables) and
// any RDD handed back to the caller (sql2rdd). Without this, each
// join- or aggregate-bearing statement leaks its map outputs into
// worker memory for the life of the cluster.
func (s *Session) releaseStatementShuffles(job *rdd.Job, retained *rdd.RDD) {
	keep := make(map[int]bool)
	add := func(r *rdd.RDD) {
		for _, id := range rdd.LineageShuffleIDs(r) {
			keep[id] = true
		}
	}
	for _, name := range s.Cat.List() {
		if t, err := s.Cat.Get(name); err == nil && t.Mem != nil {
			add(t.Mem.RDD)
		}
	}
	if retained != nil {
		add(retained)
	}
	s.Ctx.ReleaseJobShuffles(job, keep)
}

func (s *Session) cacheParts() int {
	if s.DefaultCacheParts > 0 {
		return s.DefaultCacheParts
	}
	return 4 * s.Ctx.Cluster.TotalSlots()
}

// Result is a materialized statement result. DDL statements return a
// Result with an informational message and no rows.
type Result struct {
	Schema  row.Schema
	Rows    []row.Row
	Stats   exec.QueryStats
	Message string
}

// Exec parses and executes one SQL statement.
func (s *Session) Exec(sql string) (*Result, error) {
	return s.ExecContext(context.Background(), sql)
}

// ExecContext parses and executes one SQL statement as one scheduler
// job tagged with the session, carrying the session's Priority as its
// fair-share weight and honoring MaxConcurrentJobs admission control.
// Cancelling gctx aborts the statement — its queued tasks are dropped,
// running tasks abort cooperatively at the next mid-partition
// checkpoint, a statement still waiting for admission is released
// without dispatching anything, and the returned error wraps
// context.Canceled — while the session stays fully usable for
// subsequent statements. When the statement completes, shuffle map
// outputs it pinned in worker memory are unregistered unless a live
// RDD (a cached table's lineage) still depends on them.
func (s *Session) ExecContext(gctx context.Context, sql string) (*Result, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	tr := obs.FromContext(gctx)
	psp := tr.StartSpan("parse")
	norm := sqlparse.Normalize(sql)
	stmt, err := s.parseCached(sql, norm)
	psp.End()
	if err != nil {
		return nil, err
	}
	p := &Prepared{SQL: sql, norm: norm, stmt: stmt, numParams: sqlparse.NumParams(stmt)}
	if p.numParams > 0 {
		return nil, fmt.Errorf("core: statement has %d unbound parameter(s); use ExecArgsCtx or a prepared statement", p.numParams)
	}
	return s.execPrepared(gctx, p, nil)
}

// execStatement runs one fully bound statement as a scheduler job. p
// carries the statement's cache identity when it came through the
// parse cache (nil for internal callers), letting runSelect reuse and
// publish analyzed plans.
func (s *Session) execStatement(gctx context.Context, stmt sqlparse.Statement, p *Prepared) (*Result, error) {
	job, err := s.startJob(gctx)
	if err != nil {
		return nil, err
	}
	defer func() {
		s.Ctx.FinishJob(job)
		s.releaseStatementShuffles(job, nil)
	}()
	gctx = rdd.WithJob(gctx, job)
	switch t := stmt.(type) {
	case *sqlparse.SelectStmt:
		return s.runSelect(gctx, t, p)
	case *sqlparse.CreateTableStmt:
		return s.runCreate(gctx, t)
	case *sqlparse.DropTableStmt:
		if !s.Cat.Drop(t.Name) && !t.IfExists {
			return nil, fmt.Errorf("core: unknown table %q", t.Name)
		}
		s.forgetCreated(t.Name)
		return &Result{Message: fmt.Sprintf("dropped %s", t.Name)}, nil
	case *sqlparse.ExplainStmt:
		if t.Analyze {
			return s.runExplainAnalyze(gctx, t)
		}
		return s.runExplain(t)
	}
	return nil, fmt.Errorf("core: unsupported statement %T", stmt)
}

func (s *Session) runSelect(gctx context.Context, sel *sqlparse.SelectStmt, prep *Prepared) (*Result, error) {
	tr := obs.FromContext(gctx)
	// Parameterless SELECTs can reuse the analyzed plan: analysis
	// reads the AST and compilation reads the plan, so one cached
	// plan serves concurrent executions. Parameterized statements
	// bind a fresh tree per execution and re-analyze (the AST reuse
	// already skipped lex/parse).
	var cacheKey string
	if s.Plans != nil && prep != nil && prep.numParams == 0 {
		cacheKey = s.planKey(prep.norm)
		if e, ok := s.Plans.lookup(cacheKey); ok && e.plan != nil {
			return s.runPlan(gctx, tr, e.plan)
		}
	}
	sp := tr.StartSpan("analyze/plan")
	p, err := plan.Analyze(s.Cat, sel)
	sp.End()
	if err != nil {
		return nil, err
	}
	if cacheKey != "" {
		s.Plans.insert(&planEntry{key: cacheKey, stmt: sel, plan: p})
	}
	return s.runPlan(gctx, tr, p)
}

func (s *Session) runPlan(gctx context.Context, tr *obs.Trace, p plan.Node) (*Result, error) {
	esp := tr.StartSpan("execute")
	res, err := s.Engine.RunCtx(gctx, p)
	esp.End()
	if err != nil {
		return nil, err
	}
	esp.AddRows(int64(len(res.Rows)))
	return &Result{Schema: res.Schema, Rows: res.Rows, Stats: res.Stats}, nil
}

// runExplainAnalyze executes the wrapped SELECT with per-node
// profiling and returns the plan tree annotated with measured wall
// time, row counts, cache traffic and PDE decisions. The per-node
// wall times are the master's sequential blocking segments, so their
// sum tracks the statement's wall time; the summary footer reports
// both so the attribution quality is visible.
func (s *Session) runExplainAnalyze(gctx context.Context, e *sqlparse.ExplainStmt) (*Result, error) {
	sel, ok := e.Stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: EXPLAIN ANALYZE supports SELECT only")
	}
	// Profile under a local trace when the caller (embedded session)
	// attached none, so task/fetch counts appear in the report either
	// way. The server path shares the statement's existing trace.
	tr := obs.FromContext(gctx)
	if tr == nil {
		tr = obs.NewTrace(s.Tag, "EXPLAIN ANALYZE")
		gctx = obs.WithTrace(gctx, tr)
	}
	before := tr.Snapshot()
	p, err := plan.Analyze(s.Cat, sel)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, ns, err := s.Engine.RunAnalyzeCtx(gctx, p)
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	after := tr.Snapshot()

	out := &Result{Schema: row.Schema{{Name: "plan", Type: row.TString}}}
	add := func(line string) { out.Rows = append(out.Rows, row.Row{line}) }
	for _, line := range ns.Render() {
		add(line)
	}
	attributed := ns.TotalWall()
	pct := 0.0
	if wall > 0 {
		pct = 100 * float64(attributed) / float64(wall)
	}
	add(fmt.Sprintf("-- statement: wall=%s rows=%d",
		wall.Round(time.Microsecond), len(res.Rows)))
	add(fmt.Sprintf("-- attributed: %s (%.0f%% of wall)",
		attributed.Round(time.Microsecond), pct))
	add(fmt.Sprintf("-- tasks=%d shuffle_fetches=%d (%d rows)",
		after.Tasks-before.Tasks,
		after.FetchCalls-before.FetchCalls,
		after.FetchRows-before.FetchRows))
	decisions := after.Decisions[len(before.Decisions):]
	if len(decisions) == 0 {
		add("-- pde: none")
	} else {
		add("-- pde: " + strings.Join(decisions, ", "))
	}
	return out, nil
}

func (s *Session) runExplain(e *sqlparse.ExplainStmt) (*Result, error) {
	sel, ok := e.Stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: EXPLAIN supports SELECT only")
	}
	p, err := plan.Analyze(s.Cat, sel)
	if err != nil {
		return nil, err
	}
	text := plan.Explain(p)
	out := &Result{Schema: row.Schema{{Name: "plan", Type: row.TString}}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		out.Rows = append(out.Rows, row.Row{line})
	}
	return out, nil
}

func (s *Session) runCreate(gctx context.Context, ct *sqlparse.CreateTableStmt) (*Result, error) {
	if s.Cat.Exists(ct.Name) {
		if ct.IfNotExists {
			return &Result{Message: fmt.Sprintf("table %s exists", ct.Name)}, nil
		}
		return nil, fmt.Errorf("core: table %q already exists", ct.Name)
	}
	if ct.As == nil {
		return s.createExternal(ct)
	}
	return s.createAsSelect(gctx, ct)
}

// createExternal registers a DFS-backed table.
func (s *Session) createExternal(ct *sqlparse.CreateTableStmt) (*Result, error) {
	if len(ct.Cols) == 0 || ct.Location == "" {
		return nil, fmt.Errorf("core: external table needs columns and LOCATION")
	}
	schema := make(row.Schema, len(ct.Cols))
	for i, c := range ct.Cols {
		schema[i] = row.Field{Name: c.Name, Type: c.Type}
	}
	format := dfs.Text
	if strings.EqualFold(ct.Format, "BINARY") {
		format = dfs.Binary
	}
	meta, err := s.FS.Stat(ct.Location)
	if err != nil {
		return nil, err
	}
	if len(meta.Schema) != len(schema) {
		return nil, fmt.Errorf("core: file %s has %d columns, DDL declares %d",
			ct.Location, len(meta.Schema), len(schema))
	}
	err = s.register(&catalog.Table{
		Name:    ct.Name,
		Schema:  schema,
		File:    ct.Location,
		Format:  format,
		Props:   ct.Props,
		EstRows: meta.TotalRows(),
	})
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created external table %s (%d rows)", ct.Name, meta.TotalRows())}, nil
}

// cacheLevel resolves a CTAS's storage level from TBLPROPERTIES:
// "shark.cache" accepts "true" (the session's default level) or a
// level name directly ("MEMORY_ONLY" / "MEMORY_AND_DISK" /
// "DISK_ONLY"); a "shark.storageLevel" property overrides either.
// cached=false when the table is not cached at all.
func (s *Session) cacheLevel(props map[string]string) (level rdd.StorageLevel, cached bool) {
	v := props["shark.cache"]
	switch {
	case strings.EqualFold(v, "true"):
		level, cached = s.DefaultStorageLevel, true
	default:
		level, cached = rdd.ParseStorageLevel(v)
	}
	if !cached {
		return 0, false
	}
	// The parser lowercases TBLPROPERTIES keys; accept the verbatim
	// spelling too for programmatic callers.
	for _, k := range []string{"shark.storagelevel", "shark.storageLevel"} {
		if lv, ok := rdd.ParseStorageLevel(props[k]); ok {
			level = lv
			break
		}
	}
	return level, true
}

// createAsSelect runs CTAS. With TBLPROPERTIES("shark.cache"="true")
// — or a storage level name, e.g. "shark.cache"="MEMORY_AND_DISK" —
// the result is loaded into the memstore at that level (optionally
// DISTRIBUTE BY for co-partitioning); otherwise it is written to a
// DFS file.
func (s *Session) createAsSelect(gctx context.Context, ct *sqlparse.CreateTableStmt) (*Result, error) {
	sel := ct.As
	p, err := plan.Analyze(s.Cat, sel)
	if err != nil {
		return nil, err
	}
	schema := p.Schema()

	level, cached := s.cacheLevel(ct.Props)
	if !cached {
		return s.ctasToDFS(gctx, ct, p, schema)
	}

	// Build the row RDD for loading. Sort/Limit at the top of a CTAS
	// is unusual; run through the engine and parallelize when present.
	srcRDD, err := s.planToRDD(gctx, p)
	if err != nil {
		return nil, err
	}

	var mem *memtable.Table
	if sel.DistributeBy != "" {
		keyCol := schema.Index(sel.DistributeBy)
		if keyCol < 0 {
			return nil, fmt.Errorf("core: DISTRIBUTE BY column %q not in result", sel.DistributeBy)
		}
		numParts := s.cacheParts()
		if other := ct.Props["copartition"]; other != "" {
			ot, err := s.Cat.Get(other)
			if err != nil {
				return nil, fmt.Errorf("core: copartition target: %w", err)
			}
			if ot.Mem == nil || ot.Mem.Partitioner == nil {
				return nil, fmt.Errorf("core: copartition target %q is not a distributed cached table", other)
			}
			numParts = ot.Mem.NumPartitions()
		}
		mem, err = memtable.LoadDistributedWith(gctx, ct.Name, schema, srcRDD, keyCol, numParts,
			memtable.LoadOptions{Level: level})
	} else {
		if n := s.DefaultCacheParts; n > 0 && srcRDD.NumPartitions() != n {
			srcRDD = repartitionRows(srcRDD, n)
		}
		mem, err = memtable.LoadWith(gctx, ct.Name, schema, srcRDD, memtable.LoadOptions{Level: level})
	}
	if err != nil {
		return nil, err
	}
	entry := &catalog.Table{
		Name:            ct.Name,
		Schema:          schema,
		Mem:             mem,
		Props:           ct.Props,
		EstRows:         mem.TotalRows(),
		DistKey:         sel.DistributeBy,
		CopartitionWith: ct.Props["copartition"],
	}
	if err := s.register(entry); err != nil {
		mem.Drop()
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("cached table %s (%d rows, %d partitions, %d bytes, %s)",
		ct.Name, mem.TotalRows(), mem.NumPartitions(), mem.TotalBytes(), level)}, nil
}

func (s *Session) ctasToDFS(gctx context.Context, ct *sqlparse.CreateTableStmt, p plan.Node, schema row.Schema) (*Result, error) {
	res, err := s.Engine.RunCtx(gctx, p)
	if err != nil {
		return nil, err
	}
	format := dfs.Text
	if strings.EqualFold(ct.Format, "BINARY") {
		format = dfs.Binary
	}
	// Scope the warehouse path by session tag: on a shared cluster two
	// sessions with private catalogs may CTAS the same table name.
	file := "warehouse/" + strings.ToLower(s.Tag+"/"+ct.Name)
	w, err := s.FS.Create(file, format, schema)
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		if err := w.Write(r); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	err = s.register(&catalog.Table{
		Name:    ct.Name,
		Schema:  schema,
		File:    file,
		Format:  format,
		Props:   ct.Props,
		EstRows: int64(len(res.Rows)),
	})
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created table %s (%d rows on DFS)", ct.Name, len(res.Rows))}, nil
}

// repartitionRows redistributes a row RDD into n partitions with
// synthetic round-robin keys — for cache loads whose source
// partitioning (e.g. one partition per DFS block) does not match the
// session's requested cache parallelism.
func repartitionRows(src *rdd.RDD, n int) *rdd.RDD {
	pairs := src.MapPartitions(func(part int, in rdd.Iter) rdd.Iter {
		i := int64(0)
		base := int64(part) << 32
		return rdd.FuncIter(func() (any, bool) {
			v, ok := in.Next()
			if !ok {
				return nil, false
			}
			p := shuffle.Pair{K: base + i, V: v}
			i++
			return p, true
		})
	})
	return pairs.PartitionBy(shuffle.HashPartitioner{N: n}).
		Map(func(v any) any { return v.(shuffle.Pair).V })
}

// planToRDD lowers a plan to a row RDD without materializing at the
// master, for CTAS loads and sql2rdd. Top-level Sort/Limit still
// require materialization.
func (s *Session) planToRDD(gctx context.Context, p plan.Node) (*rdd.RDD, error) {
	switch p.(type) {
	case *plan.Limit, *plan.Sort:
		res, err := s.Engine.RunCtx(gctx, p)
		if err != nil {
			return nil, err
		}
		data := make([]any, len(res.Rows))
		for i, r := range res.Rows {
			data[i] = r
		}
		return s.Ctx.Parallelize(data, s.Ctx.Cluster.TotalSlots()), nil
	}
	return s.Engine.CompileToRDDCtx(gctx, p)
}

// TableRDD is a query result as a live RDD plus its schema — the
// sql2rdd bridge of §4.1.
type TableRDD struct {
	RDD    *rdd.RDD
	Schema row.Schema
}

// RowView wraps a row with its schema for by-name access (Listing 1's
// row.getInt("age") style).
type RowView struct {
	Row    row.Row
	Schema row.Schema
}

// GetInt returns an integer column by name (0 when NULL or absent).
func (v RowView) GetInt(name string) int64 {
	i := v.Schema.Index(name)
	if i < 0 || v.Row[i] == nil {
		return 0
	}
	n, _ := row.AsInt(v.Row[i])
	return n
}

// GetFloat returns a float column by name.
func (v RowView) GetFloat(name string) float64 {
	i := v.Schema.Index(name)
	if i < 0 || v.Row[i] == nil {
		return 0
	}
	f, _ := row.AsFloat(v.Row[i])
	return f
}

// GetStr returns a string column by name.
func (v RowView) GetStr(name string) string {
	i := v.Schema.Index(name)
	if i < 0 || v.Row[i] == nil {
		return ""
	}
	s, _ := v.Row[i].(string)
	return s
}

// MapRows transforms each result row through f with schema-aware
// access, returning a new RDD — the feature-extraction step of the §4
// SQL-to-ML pipeline.
func (t *TableRDD) MapRows(f func(RowView) any) *rdd.RDD {
	schema := t.Schema.Clone()
	return t.RDD.Map(func(v any) any {
		return f(RowView{Row: v.(row.Row), Schema: schema})
	})
}

// Cache marks the underlying RDD for in-memory caching.
func (t *TableRDD) Cache() *TableRDD {
	t.RDD.Cache()
	return t
}

// Query compiles a SELECT and returns its result as a TableRDD without
// collecting it, so ML code can keep processing in the cluster.
func (s *Session) Query(sql string) (*TableRDD, error) {
	return s.QueryContext(context.Background(), sql)
}

// QueryContext is Query under a context: the compilation-time work
// (PDE pre-shuffles, subquery materializations) runs as a session-
// tagged job honoring the session's Priority and MaxConcurrentJobs,
// and honors cancellation. Actions on the returned TableRDD run as
// their own jobs later; shuffles its lineage still reads stay
// registered, while the statement's other map outputs are freed.
func (s *Session) QueryContext(gctx context.Context, sql string) (*TableRDD, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: sql2rdd requires a SELECT")
	}
	p, err := plan.Analyze(s.Cat, sel)
	if err != nil {
		return nil, err
	}
	job, err := s.startJob(gctx)
	if err != nil {
		return nil, err
	}
	var retained *rdd.RDD
	defer func() {
		s.Ctx.FinishJob(job)
		s.releaseStatementShuffles(job, retained)
	}()
	r, err := s.planToRDD(rdd.WithJob(gctx, job), p)
	if err != nil {
		return nil, err
	}
	retained = r
	return &TableRDD{RDD: r, Schema: p.Schema()}, nil
}

// RegisterUDF installs a scalar UDF usable from SQL.
func (s *Session) RegisterUDF(name string, ret row.Type, minArgs, maxArgs int, fn func(args []any) any) error {
	return s.Cat.RegisterUDF(&expr.UDF{
		Name: name, Ret: ret, MinArgs: minArgs, MaxArgs: maxArgs, RetFromArg: -1, Fn: fn,
	})
}

// RegisterMemTable registers an already-loaded memstore table (used by
// harness code that loads data programmatically).
func (s *Session) RegisterMemTable(mem *memtable.Table, props map[string]string) error {
	return s.register(&catalog.Table{
		Name:    mem.Name,
		Schema:  mem.Schema,
		Mem:     mem,
		Props:   props,
		EstRows: mem.TotalRows(),
	})
}

// RegisterExternal registers a DFS file as a table.
func (s *Session) RegisterExternal(name, file string, schema row.Schema) error {
	meta, err := s.FS.Stat(file)
	if err != nil {
		return err
	}
	return s.register(&catalog.Table{
		Name:    name,
		Schema:  schema,
		File:    file,
		Format:  meta.Format,
		EstRows: meta.TotalRows(),
	})
}
