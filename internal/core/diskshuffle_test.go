package core

import (
	"testing"

	"shark/internal/cluster"
	"shark/internal/dfs"
	"shark/internal/exec"
	"shark/internal/rdd"
	"shark/internal/shuffle"
)

// TestDiskShuffleQueries runs SQL (including aggregation states and
// COUNT DISTINCT) over a disk-mode shuffle: partial aggregation states
// must round-trip the on-disk bucket format.
func TestDiskShuffleQueries(t *testing.T) {
	c := cluster.New(cluster.Config{Workers: 4, Slots: 2})
	t.Cleanup(c.Close)
	svc := shuffle.NewService(c, shuffle.Disk, t.TempDir())
	ctx := rdd.NewContext(c, svc, rdd.Options{})
	fs, err := dfs.New(dfs.Config{Dir: t.TempDir(), BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	e := &testEnv{s: NewSession(ctx, fs, exec.Options{}), fs: fs}
	setupVisits(t, e, 2000, true)

	res := e.mustExec(t, `SELECT countryCode, COUNT(*) AS c, SUM(adRevenue),
		AVG(adRevenue), MIN(adRevenue), MAX(adRevenue), COUNT(DISTINCT destURL)
		FROM uservisits GROUP BY countryCode ORDER BY countryCode`)
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].(int64)
		if r[6].(int64) <= 0 || r[6].(int64) > 200 {
			t.Errorf("distinct urls out of range: %v", r[6])
		}
	}
	if total != 2000 {
		t.Errorf("total = %d", total)
	}

	// join through disk shuffle too
	e.writeDFS(t, "rankings_ext", rankingsSchema, genRankings(300))
	e.mustExec(t, `CREATE TABLE rankings TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM rankings_ext`)
	res = e.mustExec(t, `SELECT COUNT(*) FROM rankings JOIN uservisits ON rankings.pageURL = uservisits.destURL`)
	if res.Rows[0][0].(int64) <= 0 {
		t.Errorf("join count = %v", res.Rows[0][0])
	}
}
