package core

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"shark/internal/cluster"
	"shark/internal/expr"
	"shark/internal/row"
	"shark/internal/sqlparse"
)

// ResultCache is the opt-in cache of whole statement results for
// deterministic read-only queries. Entries are keyed on (normalized
// statement, bound argument values, engine options, input-table
// versions) and stored as evictable blocks in the cluster's tiered
// block stores, so cached results participate in the same LRU/spill
// economy as cached table partitions. A per-session byte quota bounds
// how much of the cluster a session's results may occupy; the session
// evicts its own least-recently-used results past the quota, and
// blocks the store's LRU claims are reconciled back into the
// accounting (promptly via the cluster eviction observer, or lazily
// at the next lookup).
type ResultCache struct {
	cl    *cluster.Cluster
	owner string // session tag; namespaces the block keys
	quota int64

	mu      sync.Mutex
	entries map[string]*list.Element // full key → entry
	lru     *list.List
	bytes   int64

	hits   atomic.Int64
	misses atomic.Int64
}

type resultEntry struct {
	key      string
	blockKey string
	worker   int
	size     int64
}

// cachedResult is the block-store value: the materialized rows plus
// the full key, re-checked on read so a hash collision in the block
// key can never serve the wrong statement's rows.
type cachedResult struct {
	key    string
	schema row.Schema
	rows   []row.Row
}

const resultKeyPrefix = "rescache/"

// NewResultCache creates a result cache over the cluster's block
// stores with the given byte quota.
func NewResultCache(cl *cluster.Cluster, owner string, quota int64) *ResultCache {
	return &ResultCache{
		cl:      cl,
		owner:   owner,
		quota:   quota,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// BlockKeyPrefix returns the prefix of every block this cache owns in
// the cluster stores — the cluster-level eviction observer dispatches
// on it.
func (c *ResultCache) BlockKeyPrefix() string {
	return resultKeyPrefix + c.owner + "/"
}

// Stats reports cumulative hits and misses.
func (c *ResultCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// get returns the cached result for the key, or nil. A key whose
// block the store has since evicted counts as a miss and is dropped
// from the accounting.
func (c *ResultCache) get(key string) *Result {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	e := el.Value.(*resultEntry)
	c.lru.MoveToFront(el)
	c.mu.Unlock()

	store := c.cl.Worker(e.worker).Store()
	v, ok := store.Get(e.blockKey)
	if !ok {
		// Spilled results are still servable: the read path falls
		// through to the disk tier like any spilled partition.
		v, ok = store.GetSpilled(e.blockKey)
	}
	cr, _ := v.(*cachedResult)
	if !ok || cr == nil || cr.key != key {
		c.drop(key)
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return &Result{Schema: cr.schema, Rows: cr.rows}
}

// put stores a result, then enforces the quota by evicting this
// session's least-recently-used results. Results larger than the
// quota are not cached.
func (c *ResultCache) put(key string, res *Result) {
	size := estimateResultSize(res)
	if size > c.quota {
		return
	}
	worker := int(fnvHash(key) % uint64(c.cl.NumWorkers()))
	blockKey := c.BlockKeyPrefix() + fmt.Sprintf("%016x", fnvHash(key))
	store := c.cl.Worker(worker).Store()
	if !store.PutEvictable(blockKey, &cachedResult{key: key, schema: res.Schema, rows: res.Rows}, size) {
		return
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Racing put of the same key: keep one accounting entry.
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.lru.PushFront(&resultEntry{key: key, blockKey: blockKey, worker: worker, size: size})
	c.bytes += size
	var victims []*resultEntry
	for c.bytes > c.quota && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*resultEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		victims = append(victims, e)
	}
	c.mu.Unlock()
	for _, e := range victims {
		c.cl.Worker(e.worker).Store().Delete(e.blockKey)
	}
}

// drop removes one key's accounting entry.
func (c *ResultCache) drop(key string) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*resultEntry)
		c.lru.Remove(el)
		delete(c.entries, key)
		c.bytes -= e.size
	}
	c.mu.Unlock()
}

// ReleaseEvicted reconciles a store-initiated eviction (the cluster
// LRU reclaimed one of this cache's blocks for hotter data) back into
// the byte accounting. Spilled blocks stay: they still serve from the
// disk tier.
func (c *ResultCache) ReleaseEvicted(blockKey string, spilled bool) {
	if spilled {
		return
	}
	c.mu.Lock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*resultEntry)
		if e.blockKey == blockKey {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.bytes -= e.size
			break
		}
	}
	c.mu.Unlock()
}

// Close deletes every block this cache still owns in the stores.
func (c *ResultCache) Close() {
	c.mu.Lock()
	var all []*resultEntry
	for el := c.lru.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*resultEntry))
	}
	c.entries = make(map[string]*list.Element)
	c.lru = list.New()
	c.bytes = 0
	c.mu.Unlock()
	for _, e := range all {
		c.cl.Worker(e.worker).Store().Delete(e.blockKey)
	}
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// estimateResultSize approximates a result's memory footprint for
// quota accounting, mirroring the server's batch budgeting.
func estimateResultSize(res *Result) int64 {
	size := int64(64)
	for _, f := range res.Schema {
		size += int64(len(f.Name)) + 16
	}
	for _, r := range res.Rows {
		size += 24
		for _, v := range r {
			size += 16
			if s, ok := v.(string); ok {
				size += int64(len(s))
			}
		}
	}
	return size
}

// aggregateNames are the aggregate functions the planner accepts;
// they resolve in plan.Analyze, not the scalar builtin registry, and
// all of them are deterministic.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// cacheableSelect reports whether a bound statement is eligible for
// the result cache: a SELECT whose every function call resolves to a
// deterministic built-in (scalar or aggregate). Statements calling
// UDFs are excluded — the engine cannot see whether a user function
// is pure — as is anything that mutates state (only SELECT reaches
// here with rows anyway).
func cacheableSelect(sel *sqlparse.SelectStmt) bool {
	ok := true
	var walk func(*sqlparse.SelectStmt)
	walk = func(s *sqlparse.SelectStmt) {
		if s == nil || !ok {
			return
		}
		check := func(e sqlparse.Expr) {
			if f, isCall := e.(*sqlparse.FuncCall); isCall {
				name := strings.ToUpper(f.Name)
				if _, builtin := expr.LookupBuiltin(name); !builtin && !aggregateNames[name] {
					ok = false
				}
			}
		}
		for _, it := range s.Items {
			walkExprs(it.Expr, check)
		}
		if s.From != nil {
			walk(s.From.Sub)
		}
		for _, j := range s.Joins {
			if j.Ref != nil {
				walk(j.Ref.Sub)
			}
			walkExprs(j.On, check)
		}
		walkExprs(s.Where, check)
		for _, e := range s.GroupBy {
			walkExprs(e, check)
		}
		walkExprs(s.Having, check)
		for _, o := range s.OrderBy {
			walkExprs(o.Expr, check)
		}
	}
	walk(sel)
	return ok
}

// walkExprs applies f to e and every sub-expression.
func walkExprs(e sqlparse.Expr, f func(sqlparse.Expr)) {
	sqlparse.WalkExpr(e, f)
}

// inputTables collects the base tables a bound SELECT reads,
// lowercased, sorted, deduplicated — the result-cache key's
// invalidation component.
func inputTables(sel *sqlparse.SelectStmt) []string {
	seen := map[string]bool{}
	var walk func(*sqlparse.SelectStmt)
	walk = func(s *sqlparse.SelectStmt) {
		if s == nil {
			return
		}
		refs := []*sqlparse.TableRef{s.From}
		for _, j := range s.Joins {
			refs = append(refs, j.Ref)
		}
		for _, r := range refs {
			if r == nil {
				continue
			}
			if r.Sub != nil {
				walk(r.Sub)
			} else if r.Name != "" {
				seen[strings.ToLower(r.Name)] = true
			}
		}
	}
	walk(sel)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// resultKey builds the full result-cache key: the statement's
// normalized text and bound arguments, the session's engine options,
// and each input table's name + version. The versions are read before
// execution; any later write bumps them, so subsequent lookups key
// elsewhere and the stale entry ages out.
func (s *Session) resultKey(norm string, args row.Row, tables []string) string {
	var b strings.Builder
	b.WriteString(norm)
	b.WriteByte(0)
	for _, a := range args {
		// Type-tagged rendering: int64(1) and "1" must key apart.
		fmt.Fprintf(&b, "%T:%s", a, row.FormatValue(a))
		b.WriteByte(0)
	}
	b.WriteString(s.optsFingerprint())
	for _, t := range tables {
		fmt.Fprintf(&b, "\x00%s@%d", t, s.Cat.TableVersion(t))
	}
	return b.String()
}
