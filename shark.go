// Package shark is the public API of this reproduction of
// "Shark: SQL and Rich Analytics at Scale" (Xin et al., SIGMOD 2013):
// a SQL engine over a Spark-like RDD substrate with in-memory columnar
// storage, partial DAG execution (PDE), mid-query fault tolerance, and
// first-class machine learning over query results.
//
// The API separates the shared compute substrate from the per-client
// view: a Cluster owns the simulated workers, DFS, shuffle service and
// block stores; any number of Sessions attach to it concurrently, each
// with its own catalog view (or a shared one) and engine options.
// Statements from concurrent sessions run as separate scheduler jobs
// that fair-share the cluster, and every statement is cancellable via
// ExecContext / QueryContext.
//
// Single-tenant quick start (a private cluster per session, the
// original API shape):
//
//	s, _ := shark.NewSession(shark.Config{})
//	defer s.Close()
//	s.LoadRows("logs", schema, rows)
//	s.Exec(`CREATE TABLE logs_mem TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM logs`)
//	res, _ := s.Exec(`SELECT status, COUNT(*) FROM logs_mem GROUP BY status`)
//
// Multi-tenant quick start (one cluster, many sessions):
//
//	cl, _ := shark.NewCluster(shark.ClusterConfig{Workers: 8})
//	defer cl.Close()
//	etl, _ := cl.NewSession(shark.SessionConfig{Name: "etl"})
//	dash, _ := cl.NewSession(shark.SessionConfig{Name: "dash"})
//	defer etl.Close() // releases only etl's tables, not the cluster
//	go etl.Exec(longScanSQL)
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, err := dash.ExecContext(ctx, shortQuerySQL) // cancellable
package shark

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shark/internal/catalog"
	"shark/internal/cluster"
	"shark/internal/core"
	"shark/internal/dfs"
	"shark/internal/exec"
	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/shuffle"
)

// Re-exported fundamental types.
type (
	// Row is one result or input tuple.
	Row = row.Row
	// Schema describes columns.
	Schema = row.Schema
	// Field is one column definition.
	Field = row.Field
	// Type is a column type.
	Type = row.Type
	// Result is a materialized statement result.
	Result = core.Result
	// TableRDD is a query result as a live distributed dataset
	// (the sql2rdd bridge).
	TableRDD = core.TableRDD
	// RowView is schema-aware row access for TableRDD.MapRows.
	RowView = core.RowView
	// RDD is a resilient distributed dataset.
	RDD = rdd.RDD
	// EngineOptions tunes the execution engine: join strategy,
	// adaptive-execution knobs (BroadcastThreshold, SkewFactor,
	// TargetPerReducerBytes, DisableAdaptiveExec — see docs/PDE.md),
	// and ablation switches.
	EngineOptions = exec.Options
	// QueryStats describes what the engine did for a query.
	QueryStats = exec.QueryStats
	// SessionStats snapshots a session's cluster activity: jobs,
	// tasks, task-time, cache hits / remote hits / recomputes, and
	// evictions attributed to the session.
	SessionStats = rdd.SessionStats
	// SchedulingPolicy selects how freed slots pick among queued
	// tasks of concurrent jobs.
	SchedulingPolicy = cluster.Policy
	// StorageLevel selects which tiers (memory / local disk) a cached
	// table's partitions may occupy.
	StorageLevel = rdd.StorageLevel
	// DiskTierStats aggregates the per-worker disk spill tiers.
	DiskTierStats = cluster.DiskTierStats
)

// ErrClosed marks work issued against a closed Session or Cluster:
// ExecContext/QueryContext after Session.Close (or after the cluster
// under the session was shut down) and NewSession on a closed cluster
// all return errors wrapping it. Check with errors.Is — a long-lived
// server drains by closing sessions concurrently with in-flight
// statements and needs to tell "closed" from statement failure.
var ErrClosed = core.ErrClosed

// Storage levels for cached tables.
const (
	// StorageMemoryOnly keeps cached partitions in worker memory;
	// eviction victims are dropped and rebuilt from remote copies or
	// lineage (the default).
	StorageMemoryOnly = rdd.MemoryOnly
	// StorageMemoryAndDisk spills eviction victims to the worker's
	// local disk tier and reads them back on a miss.
	StorageMemoryAndDisk = rdd.MemoryAndDisk
	// StorageDiskOnly materializes cached partitions straight to the
	// disk tier, leaving worker memory to hotter tables.
	StorageDiskOnly = rdd.DiskOnly
)

// Column types.
const (
	TInt    = row.TInt
	TFloat  = row.TFloat
	TString = row.TString
	TBool   = row.TBool
	TDate   = row.TDate
)

// Join strategy modes.
const (
	StrategyStaticAdaptive = exec.StrategyStaticAdaptive
	StrategyAdaptive       = exec.StrategyAdaptive
	StrategyStatic         = exec.StrategyStatic
)

// Scheduling policies.
const (
	// FairScheduling (default) runs the queued task whose job has the
	// fewest tasks executing — short interactive queries are not
	// starved behind a long scan's task wave.
	FairScheduling = cluster.FairShare
	// FIFOScheduling always runs the oldest queued task (the
	// single-tenant behavior; kept for the abl_concurrency ablation).
	FIFOScheduling = cluster.FIFO
)

// ClusterConfig sizes a shared simulated cluster.
type ClusterConfig struct {
	// Workers is the number of simulated nodes (default 8).
	Workers int
	// SlotsPerWorker is concurrent tasks per node (default 2).
	SlotsPerWorker int
	// DataDir backs the simulated DFS and shuffle spills; a temp
	// directory is created when empty.
	DataDir string
	// TaskLaunchOverhead overrides the per-task scheduling cost
	// (default: Spark profile, 50µs).
	TaskLaunchOverhead time.Duration
	// DiskShuffle stores shuffle map outputs on disk instead of in
	// worker memory (ablation; default memory).
	DiskShuffle bool
	// Speculation enables backup tasks for stragglers.
	Speculation bool
	// WorkerMemoryBytes bounds each simulated worker's block store:
	// cached table partitions are LRU-evicted under pressure and
	// recovered from the disk tier, remote cache reads or lineage
	// recomputation. 0 = unbounded.
	WorkerMemoryBytes int64
	// WorkerDiskBytes sizes each worker's local-disk spill tier:
	// MEMORY_AND_DISK eviction victims (and over-budget shuffle
	// buckets) land there instead of being dropped. 0 disables the
	// tier; negative = unbounded disk.
	WorkerDiskBytes int64
	// WorkerShuffleBytes gives pinned shuffle outputs a separate
	// budget so a shuffle-heavy job cannot starve the cache: pinned
	// bytes stop counting against WorkerMemoryBytes and the coldest
	// buckets spill to disk when the budget overflows. 0 keeps the
	// shared accounting.
	WorkerShuffleBytes int64
	// Scheduling selects the cross-job dequeue policy (default
	// FairScheduling).
	Scheduling SchedulingPolicy
}

// Cluster is a shared Shark compute substrate: simulated workers with
// slots and block stores, a DFS, and a shuffle service. Sessions
// attach to it with NewSession; their statements run as concurrent,
// fair-shared, cancellable scheduler jobs.
type Cluster struct {
	cl     *cluster.Cluster
	fs     *dfs.FS
	svc    *shuffle.Service
	rddCtx *rdd.Context
	shared *catalog.Catalog
	tmpDir string

	// sharedPlans is the plan cache shared by every shared-catalog
	// session: one session's parse warms its peers, and the catalog
	// version in each key makes any session's DDL invalidate all of
	// them at once. Private-catalog sessions get private caches.
	sharedPlans *core.PlanCache

	// resultCaches routes cluster block-store evictions back to the
	// owning session's result-cache accounting, keyed by block-key
	// prefix.
	rcMu         sync.RWMutex
	resultCaches map[string]*core.ResultCache

	mu          sync.Mutex
	closed      bool
	nextSession int
	// sessionNames enforces distinct session tags per cluster, keyed
	// case-insensitively: the tag keys job attribution, scoped
	// teardown (catalog Owner stamps) and DFS path scoping (which
	// lowercases), so two live sessions must never share one in any
	// case variant.
	sessionNames map[string]bool
}

// NewCluster boots a shared simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	profile := cluster.SparkProfile()
	if cfg.TaskLaunchOverhead > 0 {
		profile.TaskLaunchOverhead = cfg.TaskLaunchOverhead
	}
	dir := cfg.DataDir
	tmp := ""
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "shark-*")
		if err != nil {
			return nil, fmt.Errorf("shark: %w", err)
		}
		tmp = dir
	}
	cl := cluster.New(cluster.Config{
		Workers:            cfg.Workers,
		Slots:              cfg.SlotsPerWorker,
		Profile:            profile,
		WorkerMemoryBytes:  cfg.WorkerMemoryBytes,
		WorkerDiskBytes:    cfg.WorkerDiskBytes,
		WorkerShuffleBytes: cfg.WorkerShuffleBytes,
		SpillDir:           dir + "/spill",
		Policy:             cfg.Scheduling,
	})
	fs, err := dfs.New(dfs.Config{Dir: dir + "/dfs"})
	if err != nil {
		cl.Close()
		if tmp != "" {
			os.RemoveAll(tmp)
		}
		return nil, err
	}
	mode := shuffle.Memory
	if cfg.DiskShuffle {
		mode = shuffle.Disk
	}
	svc := shuffle.NewService(cl, mode, dir+"/shuffle")
	rddCtx := rdd.NewContext(cl, svc, rdd.Options{Speculation: cfg.Speculation})
	c := &Cluster{
		cl:           cl,
		fs:           fs,
		svc:          svc,
		rddCtx:       rddCtx,
		shared:       catalog.New(),
		tmpDir:       tmp,
		sharedPlans:  core.NewPlanCache(0),
		resultCaches: make(map[string]*core.ResultCache),
		sessionNames: make(map[string]bool),
	}
	// When the store LRU reclaims a session's cached result for
	// hotter data, credit the bytes back to that session's quota.
	cl.SetEvictionObserver(func(_ int, key string, _ int64, spilled bool) {
		c.rcMu.RLock()
		var rc *core.ResultCache
		for prefix, cache := range c.resultCaches {
			if strings.HasPrefix(key, prefix) {
				rc = cache
				break
			}
		}
		c.rcMu.RUnlock()
		if rc != nil {
			rc.ReleaseEvicted(key, spilled)
		}
	})
	return c, nil
}

// SessionConfig shapes one session's view of a shared cluster.
type SessionConfig struct {
	// Name tags the session in job attribution and Stats; a name
	// already used on the cluster is rejected. Auto-generated when
	// empty.
	Name string
	// SharedCatalog attaches the session to the cluster's shared
	// metastore (tables visible across all shared-catalog sessions)
	// instead of a private catalog.
	SharedCatalog bool
	// Priority is the session's fair-share weight (<=0 reads as 1).
	// Under the default FairScheduling policy a freed slot runs the
	// queued task whose job has the smallest running/weight ratio, so
	// a Priority-4 session sustains 4x the running tasks of a
	// Priority-1 session when both are backlogged — and achieves
	// correspondingly lower latency on a contended cluster.
	Priority int
	// MaxConcurrentJobs caps how many of the session's statements may
	// execute at once (0 = unlimited). Excess ExecContext/QueryContext
	// calls wait in a FIFO admission queue before dispatching any
	// tasks; cancelling a waiting call's context releases it
	// immediately. Session.Stats() reports AdmissionWaits and
	// AdmittedJobs.
	MaxConcurrentJobs int
	// Engine tunes this session's execution engine independently of
	// other sessions.
	Engine EngineOptions
	// StorageLevel is the default storage level for tables this
	// session caches with "shark.cache"="true" (per-table
	// TBLPROPERTIES levels override it).
	StorageLevel StorageLevel
	// ResultCacheBytes > 0 opts the session into the result cache:
	// deterministic read-only statements cache their whole results as
	// evictable blocks in the cluster's tiered stores, up to this
	// many bytes, keyed on (statement, args, engine options,
	// input-table versions) so any write to an input invalidates.
	ResultCacheBytes int64
	// DisablePlanCache turns statement plan caching off for this
	// session (ablation and debugging; default on).
	DisablePlanCache bool
}

// NewSession attaches a session to the shared cluster. Closing the
// session releases only its own tables; closing the cluster is a
// separate, explicit step.
func (c *Cluster) NewSession(cfg SessionConfig) (*Session, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: cluster is shut down", ErrClosed)
	}
	name := cfg.Name
	if name == "" {
		// Auto-generate, skipping names the user already claimed.
		for name == "" || c.sessionNames[strings.ToLower(name)] {
			c.nextSession++
			name = fmt.Sprintf("session-%d", c.nextSession)
		}
	} else {
		// The tag scopes DFS paths ("data/<tag>/", lowercased for
		// warehouse files), so slashes would nest one session's
		// namespace inside another's and case variants would collide
		// on disk.
		if strings.ContainsAny(name, "/\\") {
			c.mu.Unlock()
			return nil, fmt.Errorf("shark: session name %q must not contain path separators", name)
		}
		if c.sessionNames[strings.ToLower(name)] {
			c.mu.Unlock()
			return nil, fmt.Errorf("shark: session name %q already in use on this cluster", name)
		}
	}
	c.sessionNames[strings.ToLower(name)] = true
	c.mu.Unlock()
	cat := catalog.New()
	if cfg.SharedCatalog {
		cat = c.shared
	}
	cs := core.NewSessionNamed(c.rddCtx, c.fs, cat, name, cfg.Engine)
	cs.DefaultStorageLevel = cfg.StorageLevel
	cs.Priority = cfg.Priority
	cs.MaxConcurrentJobs = cfg.MaxConcurrentJobs
	switch {
	case cfg.DisablePlanCache:
		cs.Plans = nil
	case cfg.SharedCatalog:
		cs.Plans = c.sharedPlans
	}
	if cfg.ResultCacheBytes > 0 {
		rc := core.NewResultCache(c.cl, name, cfg.ResultCacheBytes)
		cs.Results = rc
		c.rcMu.Lock()
		c.resultCaches[rc.BlockKeyPrefix()] = rc
		c.rcMu.Unlock()
	}
	return &Session{Session: cs, Cluster: c}, nil
}

// Close shuts the cluster down: outstanding tasks are abandoned and
// temporary state is removed. Sessions still attached become unusable.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.cl.Close()
	if c.tmpDir != "" {
		os.RemoveAll(c.tmpDir)
	}
}

// NumWorkers returns the configured worker count.
func (c *Cluster) NumWorkers() int { return c.cl.NumWorkers() }

// TotalSlots returns the cluster-wide slot count.
func (c *Cluster) TotalSlots() int { return c.cl.TotalSlots() }

// AliveWorkers returns the IDs of live workers.
func (c *Cluster) AliveWorkers() []int { return c.cl.AliveWorkers() }

// Worker returns worker i (block-store introspection for tests and
// tools).
func (c *Cluster) Worker(i int) *cluster.Worker { return c.cl.Worker(i) }

// Metrics returns the dispatcher counters (steals, locality,
// evictions, spills, cancellations).
func (c *Cluster) Metrics() *cluster.DispatchMetrics { return c.cl.Metrics() }

// TasksLaunched returns the total number of tasks handed to workers.
func (c *Cluster) TasksLaunched() int64 { return c.cl.TasksLaunched() }

// SchedulerMetrics returns the RDD scheduler counters (stage timings,
// speculation, mid-partition cancellations).
func (c *Cluster) SchedulerMetrics() *rdd.Metrics { return c.rddCtx.Scheduler().Metrics() }

// DiskStats aggregates the per-worker disk spill tiers (spilled
// blocks/bytes, disk hits, disk evictions).
func (c *Cluster) DiskStats() DiskTierStats { return c.cl.DiskTierStats() }

// ShuffleMetrics returns the shuffle service counters (fetch calls,
// fetched pairs, spilled-bucket reads).
func (c *Cluster) ShuffleMetrics() *shuffle.ServiceMetrics { return c.svc.Metrics() }

// Backlog returns the dispatcher's instantaneous queue depth: tasks
// queued or pending, not yet running.
func (c *Cluster) Backlog() int64 { return c.cl.Backlog() }

// SetTaskObserver installs fn to be called with every successful
// task's service time — the feed for per-task latency histograms.
// Pass nil to remove. The observer runs on scheduler goroutines and
// must be fast and non-blocking.
func (c *Cluster) SetTaskObserver(fn func(time.Duration)) {
	c.rddCtx.Scheduler().SetTaskObserver(fn)
}

// Kill simulates a node failure, wiping the worker's local state and
// notifying the scheduler's bookkeeping.
func (c *Cluster) Kill(id int) {
	c.cl.Kill(id)
	c.rddCtx.NotifyWorkerLost(id)
}

// Restart brings a failed node back (empty, as a fresh node).
func (c *Cluster) Restart(id int) { c.cl.Restart(id) }

// Config sizes the embedded simulated cluster of the single-tenant
// NewSession wrapper.
type Config struct {
	// Workers is the number of simulated nodes (default 8).
	Workers int
	// SlotsPerWorker is concurrent tasks per node (default 2).
	SlotsPerWorker int
	// DataDir backs the simulated DFS and shuffle spills; a temp
	// directory is created when empty.
	DataDir string
	// Engine tunes the Shark execution engine.
	Engine EngineOptions
	// TaskLaunchOverhead overrides the per-task scheduling cost
	// (default: Spark profile, 50µs).
	TaskLaunchOverhead time.Duration
	// DiskShuffle stores shuffle map outputs on disk instead of in
	// worker memory (ablation; default memory).
	DiskShuffle bool
	// Speculation enables backup tasks for stragglers.
	Speculation bool
	// WorkerMemoryBytes bounds each simulated worker's block store:
	// cached table partitions are LRU-evicted under pressure and
	// recovered from the disk tier, remote cache reads or lineage
	// recomputation. 0 = unbounded.
	WorkerMemoryBytes int64
	// WorkerDiskBytes sizes each worker's local-disk spill tier
	// (0 disables it; negative = unbounded disk).
	WorkerDiskBytes int64
	// WorkerShuffleBytes gives pinned shuffle outputs a separate
	// budget (0 keeps the shared accounting).
	WorkerShuffleBytes int64
	// StorageLevel is the default storage level for cached tables
	// (per-table TBLPROPERTIES levels override it).
	StorageLevel StorageLevel
	// Priority is the session's fair-share weight (<=0 reads as 1);
	// meaningful when several contexts share the embedded cluster's
	// slots (e.g. concurrent statements), and carried by every task
	// the session launches.
	Priority int
	// MaxConcurrentJobs caps the session's concurrently executing
	// statements (0 = unlimited); excess statements queue FIFO for
	// admission.
	MaxConcurrentJobs int
}

// Session is a connected Shark client attached to a Cluster. Exec /
// ExecContext run SQL; Query / QueryContext bridge to RDDs; Stats
// reports the session's share of cluster activity.
type Session struct {
	*core.Session
	// Cluster is the substrate the session runs on (shared unless the
	// session came from the single-tenant NewSession wrapper).
	Cluster *Cluster
	// owned marks a session whose Close also shuts its private
	// cluster down (the back-compat NewSession shape).
	owned bool
	// closed latches the first Close: a second Close (a connection
	// handler racing a server drain) must not free the session's name
	// again — another session may have claimed it in between.
	closed atomic.Bool
}

// NewSession boots a private cluster and connects a single session to
// it — the original single-tenant API, now a thin wrapper over
// NewCluster + Cluster.NewSession. Closing the session closes the
// private cluster too.
func NewSession(cfg Config) (*Session, error) {
	cl, err := NewCluster(ClusterConfig{
		Workers:            cfg.Workers,
		SlotsPerWorker:     cfg.SlotsPerWorker,
		DataDir:            cfg.DataDir,
		TaskLaunchOverhead: cfg.TaskLaunchOverhead,
		DiskShuffle:        cfg.DiskShuffle,
		Speculation:        cfg.Speculation,
		WorkerMemoryBytes:  cfg.WorkerMemoryBytes,
		WorkerDiskBytes:    cfg.WorkerDiskBytes,
		WorkerShuffleBytes: cfg.WorkerShuffleBytes,
	})
	if err != nil {
		return nil, err
	}
	s, err := cl.NewSession(SessionConfig{
		Engine:            cfg.Engine,
		StorageLevel:      cfg.StorageLevel,
		Priority:          cfg.Priority,
		MaxConcurrentJobs: cfg.MaxConcurrentJobs,
	})
	if err != nil {
		cl.Close()
		return nil, err
	}
	s.owned = true
	return s, nil
}

// Close releases the session's tables (evicting its memstore blocks)
// and frees its name for reuse. A session that owns a private cluster
// (shark.NewSession) also shuts the cluster down; a session on a
// shared cluster leaves the cluster and other sessions untouched.
// Closing is idempotent and safe to race with Cluster.Close and with
// in-flight statements (which fail with ErrClosed).
func (s *Session) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.Session.Close()
	if rc := s.Session.Results; rc != nil {
		s.Cluster.rcMu.Lock()
		delete(s.Cluster.resultCaches, rc.BlockKeyPrefix())
		s.Cluster.rcMu.Unlock()
		rc.Close()
	}
	s.Cluster.mu.Lock()
	delete(s.Cluster.sessionNames, strings.ToLower(s.Tag))
	s.Cluster.mu.Unlock()
	if s.owned {
		s.Cluster.Close()
	}
}

// LoadRows writes rows into the DFS as a text table and registers it
// in the catalog — the ingestion path for examples and tests. The DFS
// path is scoped by session tag so concurrent sessions can load the
// same table name independently.
func (s *Session) LoadRows(table string, schema Schema, rows []Row) error {
	file := "data/" + s.Tag + "/" + table
	w, err := s.FS.Create(file, dfs.Text, schema)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	return s.RegisterExternal(table, file, schema)
}

// KillWorker simulates a node failure (fault-tolerance demos).
func (s *Session) KillWorker(id int) { s.Cluster.Kill(id) }

// RestartWorker brings a failed node back (empty, as a fresh node).
func (s *Session) RestartWorker(id int) { s.Cluster.Restart(id) }
