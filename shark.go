// Package shark is the public API of this reproduction of
// "Shark: SQL and Rich Analytics at Scale" (Xin et al., SIGMOD 2013):
// a SQL engine over a Spark-like RDD substrate with in-memory columnar
// storage, partial DAG execution (PDE), mid-query fault tolerance, and
// first-class machine learning over query results.
//
// Quick start:
//
//	s, _ := shark.NewSession(shark.Config{})
//	defer s.Close()
//	s.LoadRows("logs", schema, rows)
//	s.Exec(`CREATE TABLE logs_mem TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM logs`)
//	res, _ := s.Exec(`SELECT status, COUNT(*) FROM logs_mem GROUP BY status`)
package shark

import (
	"fmt"
	"os"
	"time"

	"shark/internal/cluster"
	"shark/internal/core"
	"shark/internal/dfs"
	"shark/internal/exec"
	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/shuffle"
)

// Re-exported fundamental types.
type (
	// Row is one result or input tuple.
	Row = row.Row
	// Schema describes columns.
	Schema = row.Schema
	// Field is one column definition.
	Field = row.Field
	// Type is a column type.
	Type = row.Type
	// Result is a materialized statement result.
	Result = core.Result
	// TableRDD is a query result as a live distributed dataset
	// (the sql2rdd bridge).
	TableRDD = core.TableRDD
	// RowView is schema-aware row access for TableRDD.MapRows.
	RowView = core.RowView
	// RDD is a resilient distributed dataset.
	RDD = rdd.RDD
	// EngineOptions tunes the execution engine (join strategy,
	// PDE knobs, ablation switches).
	EngineOptions = exec.Options
	// QueryStats describes what the engine did for a query.
	QueryStats = exec.QueryStats
)

// Column types.
const (
	TInt    = row.TInt
	TFloat  = row.TFloat
	TString = row.TString
	TBool   = row.TBool
	TDate   = row.TDate
)

// Join strategy modes.
const (
	StrategyStaticAdaptive = exec.StrategyStaticAdaptive
	StrategyAdaptive       = exec.StrategyAdaptive
	StrategyStatic         = exec.StrategyStatic
)

// Config sizes the embedded simulated cluster.
type Config struct {
	// Workers is the number of simulated nodes (default 8).
	Workers int
	// SlotsPerWorker is concurrent tasks per node (default 2).
	SlotsPerWorker int
	// DataDir backs the simulated DFS and shuffle spills; a temp
	// directory is created when empty.
	DataDir string
	// Engine tunes the Shark execution engine.
	Engine EngineOptions
	// TaskLaunchOverhead overrides the per-task scheduling cost
	// (default: Spark profile, 50µs).
	TaskLaunchOverhead time.Duration
	// DiskShuffle stores shuffle map outputs on disk instead of in
	// worker memory (ablation; default memory).
	DiskShuffle bool
	// Speculation enables backup tasks for stragglers.
	Speculation bool
	// WorkerMemoryBytes bounds each simulated worker's block store:
	// cached table partitions are LRU-evicted under pressure and
	// recovered by remote cache reads or lineage recomputation.
	// 0 = unbounded.
	WorkerMemoryBytes int64
}

// Session is a connected Shark instance: simulated cluster, DFS,
// metastore and engines.
type Session struct {
	*core.Session
	Cluster *cluster.Cluster
	tmpDir  string
}

// NewSession boots a simulated cluster and connects a session to it.
func NewSession(cfg Config) (*Session, error) {
	profile := cluster.SparkProfile()
	if cfg.TaskLaunchOverhead > 0 {
		profile.TaskLaunchOverhead = cfg.TaskLaunchOverhead
	}
	cl := cluster.New(cluster.Config{
		Workers:           cfg.Workers,
		Slots:             cfg.SlotsPerWorker,
		Profile:           profile,
		WorkerMemoryBytes: cfg.WorkerMemoryBytes,
	})
	dir := cfg.DataDir
	tmp := ""
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "shark-*")
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("shark: %w", err)
		}
		tmp = dir
	}
	fs, err := dfs.New(dfs.Config{Dir: dir + "/dfs"})
	if err != nil {
		cl.Close()
		return nil, err
	}
	mode := shuffle.Memory
	if cfg.DiskShuffle {
		mode = shuffle.Disk
	}
	svc := shuffle.NewService(cl, mode, dir+"/shuffle")
	ctx := rdd.NewContext(cl, svc, rdd.Options{Speculation: cfg.Speculation})
	return &Session{
		Session: core.NewSession(ctx, fs, cfg.Engine),
		Cluster: cl,
		tmpDir:  tmp,
	}, nil
}

// Close shuts the cluster down and removes temporary state.
func (s *Session) Close() {
	s.Cluster.Close()
	if s.tmpDir != "" {
		os.RemoveAll(s.tmpDir)
	}
}

// LoadRows writes rows into the DFS as a text table and registers it
// in the catalog — the ingestion path for examples and tests.
func (s *Session) LoadRows(table string, schema Schema, rows []Row) error {
	file := "data/" + table
	w, err := s.FS.Create(file, dfs.Text, schema)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	return s.RegisterExternal(table, file, schema)
}

// KillWorker simulates a node failure (fault-tolerance demos).
func (s *Session) KillWorker(id int) {
	s.Cluster.Kill(id)
	s.Ctx.NotifyWorkerLost(id)
}

// RestartWorker brings a failed node back (empty, as a fresh node).
func (s *Session) RestartWorker(id int) {
	s.Cluster.Restart(id)
}
