package driver_test

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"shark"
	"shark/internal/server"

	_ "shark/driver"
)

// startServer boots an in-process shark-server on 127.0.0.1:0 with a
// cached shared-catalog logs_mem table of n rows, and returns the
// server plus its address.
func startServer(t *testing.T, cfg server.Config, n int) (*server.Server, string) {
	t.Helper()
	if cfg.Cluster.Workers == 0 {
		cfg.Cluster.Workers = 4
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := srv.Cluster().NewSession(shark.SessionConfig{Name: "loader", SharedCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	schema := shark.Schema{
		{Name: "url", Type: shark.TString},
		{Name: "status", Type: shark.TInt},
		{Name: "bytes", Type: shark.TInt},
		{Name: "day", Type: shark.TDate},
	}
	rows := make([]shark.Row, n)
	for i := range rows {
		status := int64(200)
		if i%10 == 0 {
			status = 404
		}
		rows[i] = shark.Row{fmt.Sprintf("/p/%d", i%50), status, int64(i % 1000), int64(15000 + i%3)}
	}
	if err := loader.LoadRows("logs", schema, rows); err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Exec(`CREATE TABLE logs_mem TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM logs`); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func TestDriverQueryWithArgs(t *testing.T) {
	// BatchRows 3 forces Rows iteration across many Fetch roundtrips.
	_, addr := startServer(t, server.Config{BatchRows: 3}, 4000)
	db, err := sql.Open("shark", "shark://"+addr+"?catalog=shared&session=conf")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}

	rows, err := db.Query(
		`SELECT url, COUNT(*) AS n, SUM(bytes) AS b FROM logs_mem WHERE status = ? AND bytes >= ? GROUP BY url ORDER BY url`,
		200, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(cols) != "[url n b]" {
		t.Fatalf("columns = %v", cols)
	}
	var got int
	var totalN int64
	for rows.Next() {
		var url string
		var n, b int64
		if err := rows.Scan(&url, &n, &b); err != nil {
			t.Fatal(err)
		}
		got++
		totalN += n
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	// 50 urls of 80 rows each; /p/{0,10,20,30,40} are entirely 404
	// (i%50 ≡ 0 mod 10 implies i%10 == 0), leaving 45 groups × 80.
	if got != 45 || totalN != 3600 {
		t.Fatalf("got %d groups / %d rows, want 45 / 3600", got, totalN)
	}
}

func TestDriverPreparedAndExec(t *testing.T) {
	_, addr := startServer(t, server.Config{}, 1000)
	db, err := sql.Open("shark", addr+"?catalog=shared")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	stmt, err := db.Prepare(`SELECT COUNT(*) FROM logs_mem WHERE status = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for status, want := range map[int64]int64{200: 900, 404: 100} {
		var n int64
		if err := stmt.QueryRow(status).Scan(&n); err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Errorf("count(status=%d) = %d, want %d", status, n, want)
		}
	}

	// ExecContext reports the result-set size as RowsAffected and
	// frees its cursor without a fetch.
	res, err := db.Exec(`SELECT url FROM logs_mem WHERE bytes < ?`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 10 {
		t.Errorf("RowsAffected = %d, want 10", n)
	}

	// DATE columns scan as time.Time.
	var day time.Time
	if err := db.QueryRow(`SELECT MIN(day) FROM logs_mem`).Scan(&day); err != nil {
		t.Fatal(err)
	}
	if want := time.Unix(15000*86400, 0).UTC(); !day.Equal(want) {
		t.Errorf("day = %v, want %v", day, want)
	}

	// time.Time binds as a DATE value.
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM logs_mem WHERE day = ?`,
		time.Unix(15001*86400, 0).UTC()).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("binding time.Time matched no rows")
	}

	// SQL errors surface without poisoning the connection.
	if _, err := db.Exec(`SELECT nope FROM logs_mem`); err == nil {
		t.Error("bad column must error")
	}
	if err := db.Ping(); err != nil {
		t.Errorf("connection dead after SQL error: %v", err)
	}
}

func TestDriverAuthAndBadDSN(t *testing.T) {
	_, addr := startServer(t, server.Config{Token: "s3cret"}, 100)

	db, err := sql.Open("shark", addr+"?catalog=shared&token=wrong")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ping(); err == nil {
		t.Error("wrong token must fail the handshake")
	}
	db.Close()

	db, err = sql.Open("shark", addr+"?catalog=shared&token=s3cret")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ping(); err != nil {
		t.Errorf("correct token rejected: %v", err)
	}
	db.Close()

	for _, dsn := range []string{"", "h:1?storage=bogus", "h:1?weird=1", "h:1?priority=x"} {
		if _, err := sql.Open("shark", dsn); err == nil {
			// sql.Open defers Driver.Open errors to first use, but our
			// OpenConnector parses eagerly.
			t.Errorf("DSN %q must be rejected eagerly", dsn)
		}
	}
}

func TestDriverCtxCancelMidFetch(t *testing.T) {
	_, addr := startServer(t, server.Config{BatchRows: 2}, 2000)
	db, err := sql.Open("shark", addr+"?catalog=shared")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, `SELECT url, bytes FROM logs_mem`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	// database/sql closes the Rows asynchronously on ctx cancel; the
	// iteration must terminate with the context error, not hang.
	deadline := time.Now().Add(5 * time.Second)
	for rows.Next() {
		if time.Now().After(deadline) {
			t.Fatal("iteration did not stop after cancel")
		}
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("rows.Err() = %v, want context.Canceled", err)
	}

	// The pooled connection is still usable for the next statement.
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM logs_mem`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Errorf("post-cancel count = %d", n)
	}
}

func TestDriverCtxCancelMidExec(t *testing.T) {
	_, addr := startServer(t, server.Config{}, 20000)
	db, err := sql.Open("shark", addr+"?catalog=shared")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	// Keep issuing statements while a timer cancels the context; at
	// least one lands mid-execution. Either way the loop must stop
	// with the context error and the connection must survive.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	var execErr error
	for i := 0; i < 10000; i++ {
		var n int64
		if execErr = db.QueryRowContext(ctx,
			`SELECT COUNT(*) FROM logs_mem WHERE bytes >= ? AND status = ?`, 0, 200).Scan(&n); execErr != nil {
			break
		}
	}
	if !errors.Is(execErr, context.Canceled) {
		t.Fatalf("exec loop ended with %v, want context.Canceled", execErr)
	}

	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM logs_mem`).Scan(&n); err != nil {
		t.Fatalf("connection unusable after cancel: %v", err)
	}
	if n != 20000 {
		t.Errorf("post-cancel count = %d", n)
	}
}

// TestDriverExplainAnalyze runs EXPLAIN ANALYZE through the
// database/sql driver: the measured plan arrives as ordinary rows of
// one "plan" column, annotated with wall times and row counts, and
// the statement actually executed (the trace lands in the server's
// query log with task attribution).
func TestDriverExplainAnalyze(t *testing.T) {
	srv, addr := startServer(t, server.Config{}, 4000)
	db, err := sql.Open("shark", addr+"?catalog=shared&session=ea")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rows, err := db.Query(`EXPLAIN ANALYZE SELECT url, COUNT(*) FROM logs_mem WHERE status = 200 GROUP BY url`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "plan" {
		t.Fatalf("columns = %v, want [plan]", cols)
	}
	var plan []string
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		plan = append(plan, line)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	text := strings.Join(plan, "\n")
	for _, want := range []string{"Aggregate", "Scan", "wall=", "rows=", "-- statement:", "-- attributed:"} {
		if !strings.Contains(text, want) {
			t.Errorf("driver EXPLAIN ANALYZE missing %q:\n%s", want, text)
		}
	}

	// The statement executed for real: its trace is in the query log
	// with cluster tasks attributed.
	snaps := srv.QueryLog().Snapshot()
	if len(snaps) == 0 {
		t.Fatal("query log empty after EXPLAIN ANALYZE")
	}
	tr := snaps[0]
	if !strings.Contains(tr.SQL, "EXPLAIN ANALYZE") {
		t.Errorf("latest trace SQL = %q", tr.SQL)
	}
	if tr.Tasks == 0 {
		t.Errorf("EXPLAIN ANALYZE trace attributed no tasks")
	}
}

// TestDriverBytesAndHostileArgs: a []byte argument full of SQL syntax
// binds as data and matches nothing — regression for the old driver,
// which coerced []byte to string and shipped it through the
// interpolator, where quote, backslash and comment bytes could be
// read as SQL text.
func TestDriverBytesAndHostileArgs(t *testing.T) {
	_, addr := startServer(t, server.Config{}, 100)
	db, err := sql.Open("shark", addr+"?catalog=shared")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for _, hostile := range []string{
		`' OR '1'='1' -- `,
		`quote ' backslash \ comment --`,
		"\x00binary\xff",
	} {
		var n int64
		if err := db.QueryRow(`SELECT COUNT(*) FROM logs_mem WHERE url = ?`, []byte(hostile)).Scan(&n); err != nil {
			t.Fatalf("hostile []byte %q: %v", hostile, err)
		}
		if n != 0 {
			t.Errorf("hostile []byte %q matched %d rows, want 0", hostile, n)
		}
	}
	// The same []byte path matches real data byte-for-byte.
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM logs_mem WHERE url = ?`, []byte("/p/1")).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("[]byte arg matched no rows, want > 0")
	}
	// The connection survived every hostile bind.
	if err := db.Ping(); err != nil {
		t.Errorf("connection dead after hostile args: %v", err)
	}
}

// TestDriverLegacyFallback: `LIMIT ?` is outside the native binder's
// grammar; the driver must degrade transparently to the legacy
// interpolation path, both one-shot and through Prepare.
func TestDriverLegacyFallback(t *testing.T) {
	_, addr := startServer(t, server.Config{}, 100)
	db, err := sql.Open("shark", addr+"?catalog=shared")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	countRows := func(rows *sql.Rows, err error) int {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			var url string
			if err := rows.Scan(&url); err != nil {
				t.Fatal(err)
			}
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return n
	}

	if n := countRows(db.Query(`SELECT url FROM logs_mem LIMIT ?`, 7)); n != 7 {
		t.Errorf("one-shot LIMIT ? returned %d rows, want 7", n)
	}
	stmt, err := db.Prepare(`SELECT url FROM logs_mem LIMIT ?`)
	if err != nil {
		t.Fatalf("Prepare must degrade to the legacy path, got %v", err)
	}
	defer stmt.Close()
	if n := countRows(stmt.Query(3)); n != 3 {
		t.Errorf("prepared LIMIT ? returned %d rows, want 3", n)
	}
}
