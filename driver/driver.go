// Package driver is a database/sql driver for shark-server, so any Go
// application talks to a shared Shark cluster with the standard
// library — the standard pool provides connection reuse, and every
// pooled connection maps to one cluster session:
//
//	import _ "shark/driver"
//
//	db, err := sql.Open("shark", "localhost:7433?catalog=shared")
//	rows, err := db.QueryContext(ctx, "SELECT status, COUNT(*) FROM logs_mem WHERE bytes > ? GROUP BY status", 100)
//
// DSN shape: [shark://]host:port[?options] with options:
//
//	token     auth token (must match the server's -token)
//	session   session-name prefix (a unique suffix is appended per
//	          pooled connection; empty = server-assigned names)
//	priority  fair-share weight of this client's sessions
//	maxjobs   MaxConcurrentJobs admission cap per session
//	storage   default storage level: MEMORY_ONLY | MEMORY_AND_DISK | DISK_ONLY
//	catalog   shared | private (default private)
//	timeout   dial timeout (Go duration, default 10s)
//	rescache  per-session result-cache byte quota (0 = off, the default)
//	plancache on | off (default on): set off to disable plan caching
//
// Statements use '?' placeholders and bind natively: Prepare creates
// a real server-side statement handle, and arguments travel as typed
// wire values that are bound into the parsed tree — never
// interpolated into the statement text. Supported argument types are
// nil, ints, float64, bool, string, []byte (bound as a string whose
// bytes pass through verbatim) and time.Time, which binds as the
// engine's DATE representation (days since the Unix epoch); DATE
// result columns scan back as time.Time. Statements the native
// binder cannot take fall back transparently to the legacy
// interpolation path. Transactions are not supported.
package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"shark/internal/rdd"
	"shark/internal/row"
	"shark/internal/wire"
)

func init() {
	sql.Register("shark", Driver{})
}

// Driver implements database/sql/driver.Driver and DriverContext.
type Driver struct{}

// Open connects with a DSN (the non-pooling entry point).
func (d Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once for the pool.
func (d Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	cfg, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &connector{cfg: cfg}, nil
}

// config is a parsed DSN.
type config struct {
	addr             string
	token            string
	session          string
	priority         int
	maxJobs          int
	storage          rdd.StorageLevel
	sharedCatalog    bool
	dialTimeout      time.Duration
	resultCacheBytes uint64
	disablePlanCache bool
}

func parseDSN(dsn string) (config, error) {
	cfg := config{dialTimeout: 10 * time.Second}
	s := strings.TrimPrefix(dsn, "shark://")
	host, query, _ := strings.Cut(s, "?")
	if host == "" {
		return cfg, fmt.Errorf("shark driver: empty address in DSN %q", dsn)
	}
	cfg.addr = host
	vals, err := url.ParseQuery(query)
	if err != nil {
		return cfg, fmt.Errorf("shark driver: bad DSN options: %w", err)
	}
	for k := range vals {
		v := vals.Get(k)
		switch k {
		case "token":
			cfg.token = v
		case "session":
			cfg.session = v
		case "priority":
			if cfg.priority, err = strconv.Atoi(v); err != nil {
				return cfg, fmt.Errorf("shark driver: bad priority %q", v)
			}
		case "maxjobs":
			if cfg.maxJobs, err = strconv.Atoi(v); err != nil {
				return cfg, fmt.Errorf("shark driver: bad maxjobs %q", v)
			}
		case "storage":
			level, ok := rdd.ParseStorageLevel(v)
			if !ok {
				return cfg, fmt.Errorf("shark driver: bad storage level %q", v)
			}
			cfg.storage = level
		case "catalog":
			switch v {
			case "shared":
				cfg.sharedCatalog = true
			case "private", "":
				cfg.sharedCatalog = false
			default:
				return cfg, fmt.Errorf("shark driver: catalog must be shared or private, got %q", v)
			}
		case "timeout":
			if cfg.dialTimeout, err = time.ParseDuration(v); err != nil {
				return cfg, fmt.Errorf("shark driver: bad timeout %q", v)
			}
		case "rescache":
			if cfg.resultCacheBytes, err = strconv.ParseUint(v, 10, 63); err != nil {
				return cfg, fmt.Errorf("shark driver: bad rescache %q", v)
			}
		case "plancache":
			switch v {
			case "on", "":
				cfg.disablePlanCache = false
			case "off":
				cfg.disablePlanCache = true
			default:
				return cfg, fmt.Errorf("shark driver: plancache must be on or off, got %q", v)
			}
		default:
			return cfg, fmt.Errorf("shark driver: unknown DSN option %q", k)
		}
	}
	return cfg, nil
}

type connector struct {
	cfg config
}

// Connect dials, handshakes and attaches one session.
func (cn *connector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	cl, err := wire.Dial(cn.cfg.addr, cn.cfg.dialTimeout)
	if err != nil {
		return nil, err
	}
	if _, err := cl.RoundtripCtx(ctx, wire.Hello{Version: wire.Version, Token: cn.cfg.token}); err != nil {
		cl.Close()
		return nil, fmt.Errorf("shark driver: handshake: %w", err)
	}
	name := ""
	if cn.cfg.session != "" {
		// Session names are unique per cluster; every pooled
		// connection is its own session, so suffix the prefix.
		name = fmt.Sprintf("%s-%06x", cn.cfg.session, rand.Int31())
	}
	attached, err := cl.RoundtripCtx(ctx, wire.Attach{
		Name:              name,
		Priority:          uint64(cn.cfg.priority),
		MaxConcurrentJobs: uint64(cn.cfg.maxJobs),
		StorageLevel:      byte(cn.cfg.storage),
		SharedCatalog:     cn.cfg.sharedCatalog,
		ResultCacheBytes:  cn.cfg.resultCacheBytes,
		DisablePlanCache:  cn.cfg.disablePlanCache,
	})
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("shark driver: attach: %w", err)
	}
	ok, isOK := attached.(wire.AttachOK)
	if !isOK {
		cl.Close()
		return nil, fmt.Errorf("shark driver: unexpected attach response %T", attached)
	}
	return &conn{c: cl, session: ok.Name}, nil
}

func (cn *connector) Driver() sqldriver.Driver { return Driver{} }

// conn is one pooled connection = one wire connection = one cluster
// session.
type conn struct {
	c       *wire.Client
	session string
}

var (
	_ sqldriver.QueryerContext     = (*conn)(nil)
	_ sqldriver.ExecerContext      = (*conn)(nil)
	_ sqldriver.ConnPrepareContext = (*conn)(nil)
	_ sqldriver.Pinger             = (*conn)(nil)
	_ sqldriver.Validator          = (*conn)(nil)
	_ sqldriver.NamedValueChecker  = (*conn)(nil)
)

// Session reports the server-assigned session name.
func (c *conn) Session() string { return c.session }

func (c *conn) Prepare(query string) (sqldriver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext creates a real server-side statement handle. When
// the server's native grammar rejects the text (e.g. `LIMIT ?`, which
// only the legacy interpolation path supports), it degrades to a
// client-side statement whose executions ride the legacy Exec
// message — preserving the old driver's behavior, where Prepare never
// validated and errors surfaced at execution.
func (c *conn) PrepareContext(ctx context.Context, query string) (sqldriver.Stmt, error) {
	resp, err := c.c.RoundtripCtx(ctx, wire.Prepare{SQL: query})
	if err != nil {
		var remote *wire.RemoteError
		if errors.As(err, &remote) && (remote.Code == wire.CodeSQL || remote.Code == wire.CodeBind) {
			return &stmt{c: c, query: query, numInput: wire.CountPlaceholders(query)}, nil
		}
		return nil, c.mapErr(ctx, err)
	}
	ok, isOK := resp.(wire.PrepareOK)
	if !isOK {
		return nil, fmt.Errorf("shark driver: unexpected prepare response %T", resp)
	}
	return &stmt{c: c, query: query, handle: ok.Handle, numInput: int(ok.NumParams)}, nil
}

func (c *conn) Close() error { return c.c.Close() }

func (c *conn) Begin() (sqldriver.Tx, error) {
	return nil, errors.New("shark driver: transactions are not supported")
}

func (c *conn) Ping(ctx context.Context) error {
	_, err := c.c.RoundtripCtx(ctx, wire.Ping{})
	if err != nil {
		return sqldriver.ErrBadConn
	}
	return nil
}

func (c *conn) IsValid() bool { return c.c.Alive() }

// CheckNamedValue admits arguments the typed wire codec can carry.
// []byte and time.Time pass through untouched — the old coercions to
// string and int64 here were lossy (a []byte with quote or comment
// bytes went through the interpolator as text) and are exactly what
// native binding exists to kill.
func (c *conn) CheckNamedValue(nv *sqldriver.NamedValue) error {
	if nv.Name != "" {
		return errors.New("shark driver: named parameters are not supported")
	}
	switch nv.Value.(type) {
	case nil, int64, float64, bool, string, []byte, time.Time:
		return nil
	}
	v, err := sqldriver.DefaultParameterConverter.ConvertValue(nv.Value)
	if err != nil {
		return fmt.Errorf("shark driver: unsupported arg type %T", nv.Value)
	}
	nv.Value = v
	return nil
}

// wireArgs converts checked arguments to typed wire values. time.Time
// becomes wire.Date (days since the Unix epoch) so a date crosses the
// wire as a date; everything else is already a wire-native type.
func wireArgs(args []sqldriver.NamedValue) []any {
	if len(args) == 0 {
		return nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		if t, ok := a.Value.(time.Time); ok {
			out[i] = wire.Date(t.UTC().Unix() / 86400)
		} else {
			out[i] = a.Value
		}
	}
	return out
}

// exec runs one statement natively — by prepared handle, or one-shot
// with inline text — and returns its open cursor. A one-shot the
// server's native binder rejects retries on the legacy path.
func (c *conn) exec(ctx context.Context, handle uint64, query string, args []sqldriver.NamedValue) (uint64, wire.ResultSet, error) {
	id, resp, err := c.c.RoundtripID(ctx, wire.ExecPrepared{Handle: handle, SQL: query, Args: wireArgs(args)})
	if err != nil {
		var remote *wire.RemoteError
		if handle == 0 && errors.As(err, &remote) && remote.Code == wire.CodeBind {
			return c.execLegacy(ctx, query, args)
		}
		return 0, wire.ResultSet{}, c.mapErr(ctx, err)
	}
	rs, ok := resp.(wire.ResultSet)
	if !ok {
		return 0, wire.ResultSet{}, fmt.Errorf("shark driver: unexpected exec response %T", resp)
	}
	return id, rs, nil
}

// execLegacy is the compatibility path for statements the native
// binder cannot take: the legacy Exec message, which the server
// answers by interpolating. Arguments decay to the legacy value model
// ([]byte to string, time.Time to epoch days).
func (c *conn) execLegacy(ctx context.Context, query string, args []sqldriver.NamedValue) (uint64, wire.ResultSet, error) {
	bound := make(row.Row, len(args))
	for i, a := range args {
		switch v := a.Value.(type) {
		case []byte:
			bound[i] = string(v)
		case time.Time:
			bound[i] = v.UTC().Unix() / 86400
		default:
			bound[i] = a.Value
		}
	}
	id, resp, err := c.c.RoundtripID(ctx, wire.Exec{SQL: query, Args: bound})
	if err != nil {
		return 0, wire.ResultSet{}, c.mapErr(ctx, err)
	}
	rs, ok := resp.(wire.ResultSet)
	if !ok {
		return 0, wire.ResultSet{}, fmt.Errorf("shark driver: unexpected exec response %T", resp)
	}
	return id, rs, nil
}

// mapErr turns wire failures into idiomatic driver errors.
func (c *conn) mapErr(ctx context.Context, err error) error {
	var remote *wire.RemoteError
	if errors.As(err, &remote) {
		switch remote.Code {
		case wire.CodeCancelled:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return context.Canceled
		case wire.CodeClosed:
			// Session/cluster gone (server drain): poison this pooled
			// connection.
			return sqldriver.ErrBadConn
		}
		return errors.New(remote.Msg)
	}
	if errors.Is(err, wire.ErrConnClosed) {
		return sqldriver.ErrBadConn
	}
	return err
}

func (c *conn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	cursor, rs, err := c.exec(ctx, 0, query, args)
	if err != nil {
		return nil, err
	}
	return &rows{conn: c, ctx: ctx, cursor: cursor, schema: rs.Schema, remaining: rs.NumRows}, nil
}

func (c *conn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	cursor, rs, err := c.exec(ctx, 0, query, args)
	if err != nil {
		return nil, err
	}
	// Exec discards the rows; free the cursor server-side. A send
	// failure is surfaced — a silently leaked cursor pins the result
	// until the server's idle expiry — except ErrConnClosed: the
	// connection is already dead and IsValid poisons it for the pool.
	if err := c.c.Send(wire.CloseStmt{Cursor: cursor}); err != nil && !errors.Is(err, wire.ErrConnClosed) {
		return nil, err
	}
	return result{rows: int64(rs.NumRows)}, nil
}

type result struct{ rows int64 }

func (result) LastInsertId() (int64, error) {
	return 0, errors.New("shark driver: no insert ids")
}
func (r result) RowsAffected() (int64, error) { return r.rows, nil }

// stmt is a prepared statement. handle != 0 names a server-side
// parsed statement executed with typed argument binding; handle == 0
// is the legacy degradation for text the native grammar rejects,
// where each execution rides the interpolating Exec message.
type stmt struct {
	c        *conn
	query    string
	handle   uint64
	numInput int

	mu     sync.Mutex
	closed bool
}

var (
	_ sqldriver.StmtQueryContext = (*stmt)(nil)
	_ sqldriver.StmtExecContext  = (*stmt)(nil)
)

// Close releases the server-side handle. The release must reach the
// server — a connection silently leaking handles hits the per-conn
// handle cap — so the send error is checked; ErrConnClosed is fine,
// a dead connection's handles died with it.
func (s *stmt) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.handle == 0 {
		s.closed = true
		return nil
	}
	s.closed = true
	if err := s.c.c.Send(wire.ClosePrepared{Handle: s.handle}); err != nil && !errors.Is(err, wire.ErrConnClosed) {
		return err
	}
	return nil
}

func (s *stmt) NumInput() int { return s.numInput }

func (s *stmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

func (s *stmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

func (s *stmt) ExecContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	if s.handle == 0 {
		return s.c.ExecContext(ctx, s.query, args)
	}
	cursor, rs, err := s.c.exec(ctx, s.handle, "", args)
	if err != nil {
		return nil, err
	}
	if err := s.c.c.Send(wire.CloseStmt{Cursor: cursor}); err != nil && !errors.Is(err, wire.ErrConnClosed) {
		return nil, err
	}
	return result{rows: int64(rs.NumRows)}, nil
}

func (s *stmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	if s.handle == 0 {
		return s.c.QueryContext(ctx, s.query, args)
	}
	cursor, rs, err := s.c.exec(ctx, s.handle, "", args)
	if err != nil {
		return nil, err
	}
	return &rows{conn: s.c, ctx: ctx, cursor: cursor, schema: rs.Schema, remaining: rs.NumRows}, nil
}

func namedValues(args []sqldriver.Value) []sqldriver.NamedValue {
	out := make([]sqldriver.NamedValue, len(args))
	for i, a := range args {
		out[i] = sqldriver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return out
}

// rows iterates a server-side cursor with incremental batch fetches.
type rows struct {
	conn *conn
	// ctx is the query's context: fetches for this cursor belong to
	// the statement that opened it, so its cancellation must unblock
	// an in-flight Fetch roundtrip.
	ctx       context.Context
	cursor    uint64
	schema    row.Schema
	remaining uint64

	mu     sync.Mutex
	batch  []row.Row
	pos    int
	done   bool
	closed bool
}

var _ sqldriver.RowsColumnTypeDatabaseTypeName = (*rows)(nil)

func (r *rows) Columns() []string {
	cols := make([]string, len(r.schema))
	for i, f := range r.schema {
		cols[i] = f.Name
	}
	return cols
}

func (r *rows) ColumnTypeDatabaseTypeName(i int) string {
	switch r.schema[i].Type {
	case row.TInt:
		return "INT"
	case row.TFloat:
		return "FLOAT"
	case row.TString:
		return "STRING"
	case row.TBool:
		return "BOOL"
	case row.TDate:
		return "DATE"
	}
	return ""
}

// Close frees the server-side cursor. database/sql may call it
// concurrently with Next when a query context is cancelled. The
// close must reach the server or the cursor pins its result until
// idle expiry, so the send error is checked; ErrConnClosed is fine,
// a dead connection's cursors died with it.
func (r *rows) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if !r.done {
		if err := r.conn.c.Send(wire.CloseStmt{Cursor: r.cursor}); err != nil && !errors.Is(err, wire.ErrConnClosed) {
			return err
		}
	}
	return nil
}

func (r *rows) Next(dest []sqldriver.Value) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return io.EOF
	}
	for r.pos >= len(r.batch) {
		if r.done {
			return io.EOF
		}
		resp, err := r.conn.c.RoundtripCtx(r.ctx, wire.Fetch{Cursor: r.cursor})
		if err != nil {
			return r.conn.mapErr(r.ctx, err)
		}
		batch, ok := resp.(wire.Rows)
		if !ok {
			return fmt.Errorf("shark driver: unexpected fetch response %T", resp)
		}
		r.batch, r.pos, r.done = batch.Rows, 0, batch.Done
	}
	src := r.batch[r.pos]
	r.pos++
	if len(src) != len(dest) {
		return fmt.Errorf("shark driver: row has %d columns, want %d", len(src), len(dest))
	}
	for i, v := range src {
		if r.schema[i].Type == row.TDate {
			if days, ok := v.(int64); ok {
				dest[i] = time.Unix(days*86400, 0).UTC()
				continue
			}
		}
		dest[i] = v
	}
	return nil
}
