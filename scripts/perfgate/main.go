// Command perfgate compares the newest bench-smoke trajectory point
// (BENCH_<sha>.json, written by `make bench-smoke` / CI) against the
// previous one and fails on regressions of recorded experiment
// timings.
//
// Usage:
//
//	go run ./scripts/perfgate [-threshold 0.25] [-floor 0.05] [-min-points 3] point1.json point2.json ...
//
// Points are given oldest-first; the last two are compared. An entry
// regresses when its timing grows by more than threshold (relative)
// AND by more than floor seconds (absolute — sub-floor timings are
// scheduling noise at CI scale). With fewer than min-points total
// points the gate reports but never fails (warn-only), so a young
// trajectory cannot block CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type entry struct {
	Experiment string  `json:"Experiment"`
	Series     string  `json:"Series"`
	Seconds    float64 `json:"Seconds"`
}

type point struct {
	GeneratedAt string  `json:"generated_at"`
	Scale       string  `json:"scale"`
	Entries     []entry `json:"entries"`
}

func load(path string) (*point, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p point
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &p, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.25, "relative slowdown that counts as a regression")
	floor := flag.Float64("floor", 0.05, "absolute slowdown floor in seconds (noise gate)")
	minPoints := flag.Int("min-points", 3, "fail only when at least this many trajectory points exist")
	flag.Parse()
	files := flag.Args()
	if len(files) < 2 {
		fmt.Printf("perfgate: %d trajectory point(s) — need at least 2 to compare, skipping\n", len(files))
		return
	}
	prev, err := load(files[len(files)-2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	cur, err := load(files[len(files)-1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	if prev.Scale != cur.Scale {
		fmt.Printf("perfgate: scale changed (%q -> %q), baselines incomparable, skipping\n", prev.Scale, cur.Scale)
		return
	}

	base := make(map[string]float64, len(prev.Entries))
	for _, e := range prev.Entries {
		if e.Seconds > 0 {
			base[e.Experiment+" | "+e.Series] = e.Seconds
		}
	}
	regressions := 0
	compared := 0
	for _, e := range cur.Entries {
		if e.Seconds <= 0 {
			continue
		}
		key := e.Experiment + " | " + e.Series
		old, ok := base[key]
		if !ok {
			continue // new experiment/series: no baseline yet
		}
		compared++
		if e.Seconds > old*(1+*threshold) && e.Seconds-old > *floor {
			regressions++
			fmt.Printf("REGRESSION %-70s %.3fs -> %.3fs (+%.0f%%)\n",
				key, old, e.Seconds, (e.Seconds/old-1)*100)
		}
	}
	fmt.Printf("perfgate: compared %d timings (%s -> %s), %d regression(s) past +%.0f%%/%.0fms\n",
		compared, prev.GeneratedAt, cur.GeneratedAt, regressions, *threshold*100, *floor*1000)
	if regressions == 0 {
		return
	}
	if len(files) < *minPoints {
		fmt.Printf("perfgate: only %d trajectory point(s) (<%d) — warn-only, not failing\n", len(files), *minPoints)
		return
	}
	os.Exit(1)
}
