#!/bin/sh
# perfgate.sh — compare the newest BENCH_<sha>.json trajectory point
# against the previous one and fail on >25% timing regressions once the
# trajectory has at least 3 points (warn-only before that, so the empty
# trajectory cannot block CI).
#
# Usage: scripts/perfgate.sh [dir-with-BENCH_json-files]
set -eu

dir="${1:-.}"
cd "$(dirname "$0")/.."

# Oldest-first by modification time; the comparer looks at the last two.
# shellcheck disable=SC2012
files=$(ls -1tr "$dir"/BENCH_*.json 2>/dev/null || true)
if [ -z "$files" ]; then
    echo "perfgate: no BENCH_*.json trajectory points under $dir — trajectory empty, skipping"
    exit 0
fi

# shellcheck disable=SC2086
exec go run ./scripts/perfgate $files
