package shark_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"shark"
)

// newTestCluster boots a small shared cluster.
func newTestCluster(t *testing.T, cfg shark.ClusterConfig) *shark.Cluster {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	cl, err := shark.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// attach creates a session on cl and loads + caches a logs table of n
// rows (schema from shark_test.go).
func attach(t *testing.T, cl *shark.Cluster, name string, n int) *shark.Session {
	t.Helper()
	s, err := cl.NewSession(shark.SessionConfig{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]shark.Row, n)
	for i := 0; i < n; i++ {
		status := int64(200)
		if i%10 == 0 {
			status = 404
		}
		rows[i] = shark.Row{fmt.Sprintf("/p/%d", i%50), status, int64(i % 1000), int64(15000 + i/100)}
	}
	if err := s.LoadRows("logs", logsSchema, rows); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`CREATE TABLE logs_mem TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM logs`); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMultiTenantQuickStart mirrors the README: one shared cluster,
// two sessions with isolated data, concurrent correct results, and a
// cancelled statement that leaves its session healthy.
func TestMultiTenantQuickStart(t *testing.T) {
	cl := newTestCluster(t, shark.ClusterConfig{})
	etl := attach(t, cl, "etl", 4000)
	dash := attach(t, cl, "dash", 1000)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	check := func(s *shark.Session, want int64) {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			res, err := s.Exec(`SELECT COUNT(*) FROM logs_mem WHERE status = 200`)
			if err != nil {
				errs <- err
				return
			}
			if got := res.Rows[0][0].(int64); got != want {
				errs <- fmt.Errorf("count = %d, want %d", got, want)
				return
			}
		}
	}
	wg.Add(2)
	go check(etl, 3600)
	go check(dash, 900)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Cancel a statement on one session; it stays usable.
	gctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := etl.ExecContext(gctx, `SELECT url, COUNT(*) FROM logs_mem GROUP BY url`); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled exec err = %v, want context.Canceled", err)
	}
	res, err := etl.Exec(`SELECT COUNT(*) FROM logs_mem`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 4000 {
		t.Errorf("post-cancel count = %v", res.Rows[0][0])
	}

	// Per-session stats are attributed separately and populated.
	es, ds := etl.Stats(), dash.Stats()
	if es.Jobs == 0 || es.Tasks == 0 {
		t.Errorf("etl stats empty: %+v", es)
	}
	if ds.Jobs == 0 || ds.Tasks == 0 {
		t.Errorf("dash stats empty: %+v", ds)
	}

	// Closing one session keeps the cluster and the other session up.
	dash.Close()
	if _, err := etl.Exec(`SELECT COUNT(*) FROM logs_mem`); err != nil {
		t.Fatalf("etl broken after dash.Close: %v", err)
	}
	if len(cl.AliveWorkers()) != cl.NumWorkers() {
		t.Error("closing a session took down workers")
	}
}

// TestSharedCatalogSessions: SharedCatalog sessions see one metastore.
func TestSharedCatalogSessions(t *testing.T) {
	cl := newTestCluster(t, shark.ClusterConfig{})
	w, err := cl.NewSession(shark.SessionConfig{Name: "writer", SharedCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cl.NewSession(shark.SessionConfig{Name: "reader", SharedCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := []shark.Row{{"/a", int64(200), int64(1), int64(15000)}, {"/b", int64(404), int64(2), int64(15000)}}
	if err := w.LoadRows("tiny", logsSchema, rows); err != nil {
		t.Fatal(err)
	}
	res, err := r.Exec(`SELECT COUNT(*) FROM tiny`)
	if err != nil {
		t.Fatalf("reader could not see writer's table: %v", err)
	}
	if res.Rows[0][0].(int64) != 2 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

// TestQueryContextCancellable: the sql2rdd bridge honors cancellation
// too.
func TestQueryContextCancellable(t *testing.T) {
	cl := newTestCluster(t, shark.ClusterConfig{})
	s := attach(t, cl, "ml", 500)
	gctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	tr, err := s.QueryContext(gctx, `SELECT bytes, status FROM logs_mem`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.RDD.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("rows = %d", n)
	}
}

// TestSessionNamesUniquePerCluster: duplicate explicit names are
// rejected, auto-names never collide with user-claimed ones, and a
// closed session's name becomes reusable.
func TestSessionNamesUniquePerCluster(t *testing.T) {
	cl := newTestCluster(t, shark.ClusterConfig{Workers: 2})
	s2, err := cl.NewSession(shark.SessionConfig{Name: "session-1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.NewSession(shark.SessionConfig{Name: "session-1"}); err == nil {
		t.Error("duplicate explicit session name must be rejected")
	}
	auto, err := cl.NewSession(shark.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Tag == s2.Tag {
		t.Errorf("auto-generated name %q collides with a user-claimed name", auto.Tag)
	}
	rows := []shark.Row{{"/a", int64(200), int64(1), int64(15000)}}
	if err := s2.LoadRows("t", logsSchema, rows); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	// The freed name is reusable, including its scoped DFS paths: the
	// successor can load the very same table name.
	s3, err := cl.NewSession(shark.SessionConfig{Name: "session-1"})
	if err != nil {
		t.Fatalf("closed session's name not reusable: %v", err)
	}
	if err := s3.LoadRows("t", logsSchema, rows); err != nil {
		t.Errorf("name reuse left stale DFS state behind: %v", err)
	}
}

// TestClusterClosedRejectsNewSessions: attaching to a closed cluster
// fails cleanly.
func TestClusterClosedRejectsNewSessions(t *testing.T) {
	cl, err := shark.NewCluster(shark.ClusterConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := cl.NewSession(shark.SessionConfig{}); err == nil {
		t.Error("NewSession on a closed cluster must fail")
	}
}

// TestPublicPriorityAndAdmission: the public SessionConfig knobs reach
// the scheduler — a Priority session's statements carry its weight,
// and MaxConcurrentJobs=1 serializes concurrent ExecContext calls with
// the waits visible in Stats().
func TestPublicPriorityAndAdmission(t *testing.T) {
	cl := newTestCluster(t, shark.ClusterConfig{Workers: 2})
	s, err := cl.NewSession(shark.SessionConfig{Name: "gold", Priority: 4, MaxConcurrentJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := []shark.Row{{"/a", int64(200), int64(1), int64(15000)}, {"/b", int64(404), int64(2), int64(16000)}}
	if err := s.LoadRows("logs", logsSchema, rows); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`CREATE TABLE logs_mem TBLPROPERTIES ("shark.cache"="true") AS SELECT * FROM logs`); err != nil {
		t.Fatal(err)
	}

	const stmts = 4
	var wg sync.WaitGroup
	errs := make(chan error, stmts)
	for i := 0; i < stmts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.ExecContext(context.Background(), `SELECT COUNT(*), SUM(bytes) FROM logs_mem`)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// The four SELECTs all passed admission (the CREATE ran before
	// any contention).
	if st.AdmittedJobs < stmts {
		t.Errorf("AdmittedJobs = %d, want >= %d", st.AdmittedJobs, stmts)
	}
	if st.AdmissionWaits == 0 {
		t.Error("AdmissionWaits = 0: four concurrent statements under a cap of 1 never waited")
	}
}
